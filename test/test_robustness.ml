(* Robustness-layer tests: cooperative deadlines in the solver hot loops,
   the degradation ladder (registry- and scheduler-level, with
   priority-ordered shedding), the post-batch invariant auditor, the
   crash-recovery journal, and the revocation edge cases in the fault
   harness and transaction middleware. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk ?(id = 0) ?(app = 0) ?(priority = 0) ?(arrival = 0) cpu =
  Container.make ~id ~app ~demand:(Resource.cpu_only cpu) ~priority ~arrival

let fresh_cluster w ~n_machines =
  Cluster.create
    (Workload.topology w ~n_machines)
    ~constraints:(Workload.constraint_set w)

let machines_for w ~headroom =
  let total =
    (Resource.to_array (Workload.total_demand w)).(Resource.cpu_dim)
  in
  let per =
    (Resource.to_array w.Workload.machine_capacity).(Resource.cpu_dim)
  in
  max 4 (int_of_float (ceil (headroom *. float_of_int total /. float_of_int per)))

let small_workload seed =
  Alibaba.generate { (Alibaba.scaled 0.004) with Alibaba.seed = seed }

let uniform_workload ?(n = 12) () =
  let apps =
    [| Application.make ~id:0 ~n_containers:n ~demand:(Resource.cpu_only 4.) () |]
  in
  let containers = Array.init n (fun i -> mk ~id:i ~app:0 4.) in
  Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 8.)

let first_fit =
  {
    Scheduler.name = "first-fit";
    schedule =
      (fun cluster batch ->
        let undeployed = ref [] in
        Array.iter
          (fun c ->
            let n = Cluster.n_machines cluster in
            let rec go mid =
              if mid >= n then undeployed := c :: !undeployed
              else
                match Cluster.place cluster c mid with
                | Ok () -> ()
                | Error _ -> go (mid + 1)
            in
            go 0)
          batch;
        {
          Scheduler.empty_outcome with
          Scheduler.placed =
            Array.to_list batch
            |> List.filter_map (fun (c : Container.t) ->
                   Option.map
                     (fun m -> (c.Container.id, m))
                     (Cluster.machine_of cluster c.Container.id));
          undeployed = List.rev !undeployed;
        });
  }

(* A 0 -> 1 -> 2 -> 3 line network, max flow 5. *)
let line_net () =
  let g = Flownet.Graph.create 4 in
  ignore (Flownet.Graph.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:1);
  ignore (Flownet.Graph.add_arc g ~src:1 ~dst:2 ~cap:5 ~cost:1);
  ignore (Flownet.Graph.add_arc g ~src:2 ~dst:3 ~cap:5 ~cost:1);
  g

(* ---------- deadline core ---------- *)

let test_deadline_steps () =
  let d = Flownet.Deadline.make ~steps:5 () in
  for _ = 1 to 5 do
    Flownet.Deadline.tick d "t"
  done;
  check bool "within budget" false (Flownet.Deadline.expired d);
  (match Flownet.Deadline.tick d "t" with
  | () -> Alcotest.fail "6th tick must expire a 5-step budget"
  | exception Flownet.Deadline.Expired { site; _ } ->
      check Alcotest.string "expiry names the site" "t" site);
  check bool "expiry is sticky" true (Flownet.Deadline.expired d);
  check bool "later ticks keep raising" true
    (match Flownet.Deadline.tick d "t2" with
    | () -> false
    | exception Flownet.Deadline.Expired _ -> true)

let test_deadline_wall_pre_expired () =
  let d = Flownet.Deadline.make ~wall_ms:1e-6 () in
  check bool "first tick samples the clock" true
    (match Flownet.Deadline.tick d "w" with
    | () -> false
    | exception Flownet.Deadline.Expired _ -> true)

let test_deadline_unbounded () =
  let d = Flownet.Deadline.make () in
  for _ = 1 to 10_000 do
    Flownet.Deadline.tick d "free"
  done;
  check bool "never expires" false (Flownet.Deadline.expired d)

let test_ambient_nesting () =
  check bool "no ambient by default" true (Flownet.Deadline.ambient () = None);
  let outer = Flownet.Deadline.make ~steps:100 () in
  let inner = Flownet.Deadline.make ~steps:50 () in
  Flownet.Deadline.with_ambient outer (fun () ->
      check bool "outer armed" true (Flownet.Deadline.ambient () = Some outer);
      Flownet.Deadline.with_ambient inner (fun () ->
          check bool "inner shadows" true
            (Flownet.Deadline.ambient () = Some inner));
      check bool "outer restored" true
        (Flownet.Deadline.ambient () = Some outer);
      check bool "explicit beats ambient" true
        (Flownet.Deadline.resolve (Some inner) = Some inner);
      check bool "ambient fills in" true
        (Flownet.Deadline.resolve None = Some outer));
  check bool "cleared on exit" true (Flownet.Deadline.ambient () = None)

(* ---------- deadline at the solver boundary ---------- *)

let test_mincost_typed_error () =
  let g = line_net () in
  let c = Obs.counter "deadline.exceeded" in
  let e0 = Obs.count c in
  (match
     Flownet.Mincost.run
       ~deadline:(Flownet.Deadline.make ~steps:0 ())
       g ~src:0 ~dst:3
   with
  | Error (Flownet.Error.Deadline_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "0-step budget cannot complete a solve"
  | Error e -> Alcotest.fail ("wrong error: " ^ Flownet.Error.to_string e));
  check bool "deadline.exceeded counted" true (Obs.count c > e0)

let test_registry_converts_raising_backends () =
  List.iter
    (fun name ->
      let m = Option.get (Flownet.Registry.find name) in
      let g = line_net () in
      match
        Flownet.Registry.solve m
          ~deadline:(Flownet.Deadline.make ~steps:0 ())
          g ~src:0 ~dst:3
      with
      | Error (Flownet.Error.Deadline_exceeded _) -> ()
      | Ok _ -> Alcotest.fail (name ^ ": 0-step budget cannot complete")
      | Error e ->
          Alcotest.fail (name ^ ": wrong error " ^ Flownet.Error.to_string e))
    [ "mincost"; "cost-scaling"; "dinic"; "push-relabel" ]

let test_ambient_expiry_propagates_as_exception () =
  let m = Option.get (Flownet.Registry.find "dinic") in
  let g = line_net () in
  let d = Flownet.Deadline.make ~steps:0 () in
  check bool "ambient expiry escapes for the ladder" true
    (match
       Flownet.Deadline.with_ambient d (fun () ->
           Flownet.Registry.solve m g ~src:0 ~dst:3)
     with
    | exception Flownet.Deadline.Expired _ -> true
    | Ok _ | Error _ -> false)

let test_solve_completes_under_roomy_deadline () =
  let g = line_net () in
  match
    Flownet.Mincost.run
      ~deadline:(Flownet.Deadline.make ~steps:100_000 ~wall_ms:60_000. ())
      g ~src:0 ~dst:3
  with
  | Ok s ->
      check int "flow" 5 s.Flownet.Mincost.flow;
      check int "cost" 15 s.Flownet.Mincost.cost
  | Error e -> Alcotest.fail (Flownet.Error.to_string e)

(* ---------- registry solve_ladder ---------- *)

let test_solve_ladder_escalates () =
  let g = line_net () in
  let c_esc = Obs.counter "ladder.escalations" in
  let c_dinic = Obs.counter "ladder.rung.dinic" in
  let e0 = Obs.count c_esc and d0 = Obs.count c_dinic in
  let r, rung =
    Flownet.Registry.solve_ladder
      ~rungs:[ "mincost"; "dinic" ]
      ~deadline_ms:1e-6 g ~src:0 ~dst:3
  in
  check Alcotest.string "terminal rung wins" "dinic" rung;
  (match r with
  | Ok s -> check int "terminal rung unbounded, full flow" 5 s.Flownet.Mincost.flow
  | Error e -> Alcotest.fail (Flownet.Error.to_string e));
  check int "one escalation" (e0 + 1) (Obs.count c_esc);
  check int "winning rung counted" (d0 + 1) (Obs.count c_dinic)

let test_solve_ladder_first_rung_without_deadline () =
  let g = line_net () in
  let r, rung =
    Flownet.Registry.solve_ladder ~rungs:[ "mincost"; "dinic" ] g ~src:0 ~dst:3
  in
  check Alcotest.string "no budget, first rung wins" "mincost" rung;
  check bool "solved" true (match r with Ok _ -> true | Error _ -> false)

(* ---------- scheduler ladder middleware ---------- *)

(* Places one container, then hits the ambient deadline — the partial
   placement must be rolled back before the next rung runs. *)
let busy_then_expire =
  {
    Scheduler.name = "busy";
    schedule =
      (fun cluster batch ->
        if Array.length batch > 0 then
          ignore (Cluster.place cluster batch.(0) 0);
        Flownet.Deadline.check_ambient "busy.loop";
        (* past the deadline probe: finish the rest like first-fit *)
        let rest = Array.sub batch 1 (max 0 (Array.length batch - 1)) in
        let o = first_fit.Scheduler.schedule cluster rest in
        { o with Scheduler.placed = (batch.(0).Container.id, 0) :: o.Scheduler.placed });
  }

let test_with_deadline_escalates_and_restores () =
  let w = uniform_workload () in
  let batch = w.Workload.containers in
  let reference = fresh_cluster w ~n_machines:6 in
  let o_ref = first_fit.Scheduler.schedule reference batch in
  let c_esc = Obs.counter "ladder.escalations" in
  let c_win = Obs.counter "ladder.rung.greedy" in
  let e0 = Obs.count c_esc and w0 = Obs.count c_win in
  let cluster = fresh_cluster w ~n_machines:6 in
  let sched =
    Scheduler.with_deadline ~deadline_ms:1e-6
      [ ("slow", busy_then_expire); ("greedy", first_fit) ]
  in
  let o = sched.Scheduler.schedule cluster batch in
  check int "escalated once" (e0 + 1) (Obs.count c_esc);
  check int "greedy rung won" (w0 + 1) (Obs.count c_win);
  check int "same placements as pure greedy"
    (List.length o_ref.Scheduler.placed)
    (List.length o.Scheduler.placed);
  check bool "cluster state identical to pure greedy" true
    (List.sort compare (Cluster.placements cluster)
    = List.sort compare (Cluster.placements reference))

let test_with_deadline_unbudgeted_first_rung_wins () =
  let w = uniform_workload () in
  let cluster = fresh_cluster w ~n_machines:6 in
  let sched =
    Scheduler.with_deadline
      [ ("slow", busy_then_expire); ("greedy", first_fit) ]
  in
  (* no deadline: check_ambient is a no-op, the first rung completes *)
  let o = sched.Scheduler.schedule cluster w.Workload.containers in
  check int "all placed by first rung" 12 (List.length o.Scheduler.placed)

(* Expires while the batch is bigger than 2 containers: the ladder must
   shed lowest-priority halves until the remainder fits the budget. *)
let expire_on_big_batches =
  {
    Scheduler.name = "cap2";
    schedule =
      (fun cluster batch ->
        if Array.length batch > 2 then
          Flownet.Deadline.check_ambient "cap2.loop";
        first_fit.Scheduler.schedule cluster batch);
  }

let test_with_deadline_sheds_lowest_priority () =
  let apps =
    [| Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 4.) () |]
  in
  let containers =
    Array.init 8 (fun i -> mk ~id:i ~app:0 ~priority:i ~arrival:i 4.)
  in
  let w =
    Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 8.)
  in
  let cluster = fresh_cluster w ~n_machines:6 in
  let c_shed = Obs.counter "ladder.shed_containers" in
  let s0 = Obs.count c_shed in
  let sched =
    Scheduler.with_deadline ~deadline_ms:1e-6
      [ ("cap2", expire_on_big_batches) ]
  in
  let o = sched.Scheduler.schedule cluster containers in
  check int "shed 8 -> 4 -> 2" (s0 + 6) (Obs.count c_shed);
  check int "the two survivors placed" 2 (List.length o.Scheduler.placed);
  check int "everything else reported undeployed" 6
    (List.length o.Scheduler.undeployed);
  let placed_ids = List.map fst o.Scheduler.placed in
  check bool "survivors are the highest-priority containers" true
    (List.sort compare placed_ids = [ 6; 7 ])

let test_with_deadline_zero_budget_terminates () =
  let w = uniform_workload () in
  let cluster = fresh_cluster w ~n_machines:6 in
  let always_expire =
    {
      Scheduler.name = "never";
      schedule =
        (fun _ _ ->
          Flownet.Deadline.check_ambient "never.loop";
          Scheduler.empty_outcome);
    }
  in
  let sched =
    Scheduler.with_deadline ~deadline_ms:1e-6 [ ("never", always_expire) ]
  in
  let o = sched.Scheduler.schedule cluster w.Workload.containers in
  check int "degenerates to all-undeployed, no hang" 12
    (List.length o.Scheduler.undeployed);
  check int "nothing placed" 0 (List.length o.Scheduler.placed)

(* ---------- end-to-end: aladdin first rung, gokube terminal ---------- *)

let test_aladdin_ladder_completes_under_tight_budget () =
  let w = small_workload 35 in
  let n_machines = machines_for w ~headroom:1.3 in
  let c_exceeded = Obs.counter "deadline.exceeded" in
  let c_gokube = Obs.counter "ladder.rung.gokube" in
  let x0 = Obs.count c_exceeded and g0 = Obs.count c_gokube in
  let sched =
    Ladder.make ~deadline_ms:0.001
      ~rungs:[ "mincost"; "gokube" ]
      ~first:("aladdin", Aladdin.Aladdin_scheduler.make ())
      ()
  in
  let r =
    Replay.run ~batch:24 sched
      ~cluster:(fresh_cluster w ~n_machines)
      ~containers:w.Workload.containers
  in
  check int "every container accounted for" r.Replay.n_submitted
    (List.length r.Replay.outcome.Scheduler.placed
    + List.length r.Replay.outcome.Scheduler.undeployed);
  check bool "deadlines actually expired" true (Obs.count c_exceeded > x0);
  check bool "terminal greedy rung carried batches" true
    (Obs.count c_gokube > g0)

(* ---------- auditor ---------- *)

let two_conflicting_apps () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 2.) ();
      Application.make ~id:1 ~n_containers:2 ~demand:(Resource.cpu_only 2.)
        ~anti_affinity_across:[ 0 ] ();
    |]
  in
  let containers =
    [| mk ~id:0 ~app:0 2.; mk ~id:1 ~app:1 ~arrival:1 2. |]
  in
  Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 8.)

let outcome_placed cluster batch =
  {
    Scheduler.empty_outcome with
    Scheduler.placed =
      Array.to_list batch
      |> List.filter_map (fun (c : Container.t) ->
             Option.map
               (fun m -> (c.Container.id, m))
               (Cluster.machine_of cluster c.Container.id));
  }

let test_audit_repairs_anti_affinity () =
  let w = two_conflicting_apps () in
  let cluster = fresh_cluster w ~n_machines:3 in
  let batch = w.Workload.containers in
  (* force the conflicting pair onto one machine *)
  Array.iter
    (fun c ->
      match Cluster.place ~force:true cluster c 0 with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "fixture placement failed")
    batch;
  let outcome = outcome_placed cluster batch in
  let found = Audit.check cluster ~batch ~outcome in
  check bool "violation detected" true
    (List.exists (function Audit.Anti_affinity _ -> true | _ -> false) found);
  let amended, unrepaired = Audit.run cluster ~batch ~outcome in
  check int "no unrepaired violations" 0 (List.length unrepaired);
  check int "both containers still placed" 2
    (List.length amended.Scheduler.placed);
  check bool "now on distinct machines" true
    (Cluster.machine_of cluster 0 <> Cluster.machine_of cluster 1);
  check int "post-repair state is clean" 0
    (List.length (Audit.check cluster ~batch ~outcome:amended))

let test_audit_repairs_offline_placement () =
  let w = uniform_workload ~n:2 () in
  let cluster = fresh_cluster w ~n_machines:3 in
  let batch = w.Workload.containers in
  Array.iter (fun c -> ignore (Cluster.place cluster c 0)) batch;
  Cluster.set_offline cluster 0 true;
  let outcome = outcome_placed cluster batch in
  let found = Audit.check cluster ~batch ~outcome in
  check int "one violation per stranded container" 2 (List.length found);
  let amended, unrepaired = Audit.run cluster ~batch ~outcome in
  check int "repaired" 0 (List.length unrepaired);
  check int "both re-placed" 2 (List.length amended.Scheduler.placed);
  List.iter
    (fun (cid, mid) ->
      check bool (Printf.sprintf "container %d off the dead machine" cid) true
        (mid <> 0))
    amended.Scheduler.placed

let test_audit_finds_lost_container () =
  let w = uniform_workload ~n:2 () in
  let cluster = fresh_cluster w ~n_machines:2 in
  let batch = w.Workload.containers in
  (* the scheduler "forgot" container 1: neither placed nor undeployed *)
  ignore (Cluster.place cluster batch.(0) 0);
  let outcome = outcome_placed cluster batch in
  let found = Audit.check cluster ~batch ~outcome in
  check bool "lost container detected" true
    (List.exists
       (function
         | Audit.Lost_container { container } -> container.Container.id = 1
         | _ -> false)
       found);
  let amended, unrepaired = Audit.run cluster ~batch ~outcome in
  check int "repaired" 0 (List.length unrepaired);
  check int "recovered into a placement" 2
    (List.length amended.Scheduler.placed)

let test_audit_repairs_priority_inversion () =
  let apps =
    [| Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 4.) () |]
  in
  let low = mk ~id:0 ~app:0 ~priority:0 4. in
  let high = mk ~id:1 ~app:0 ~priority:5 ~arrival:1 8. in
  let w =
    Workload.make ~apps ~containers:[| low; high |]
      ~machine_capacity:(Resource.cpu_only 8.)
  in
  let cluster = fresh_cluster w ~n_machines:1 in
  let batch = [| low; high |] in
  ignore (Cluster.place cluster low 0);
  let outcome =
    {
      Scheduler.empty_outcome with
      Scheduler.placed = [ (0, 0) ];
      undeployed = [ high ];
    }
  in
  let found = Audit.check cluster ~batch ~outcome in
  check bool "inversion detected" true
    (List.exists
       (function Audit.Priority_inversion _ -> true | _ -> false)
       found);
  let amended, unrepaired = Audit.run cluster ~batch ~outcome in
  check int "no unrepaired violations" 0 (List.length unrepaired);
  check bool "high-priority container seated" true
    (Cluster.machine_of cluster 1 = Some 0);
  check bool "low-priority container displaced" true
    (Cluster.machine_of cluster 0 = None);
  check bool "displacement reported undeployed" true
    (List.exists
       (fun (c : Container.t) -> c.Container.id = 0)
       amended.Scheduler.undeployed)

let test_audit_clean_run_no_false_positives () =
  let w = uniform_workload () in
  let cluster = fresh_cluster w ~n_machines:6 in
  let c_viol = Obs.counter "audit.violations" in
  let v0 = Obs.count c_viol in
  let sched = Audit.wrap first_fit in
  let o = sched.Scheduler.schedule cluster w.Workload.containers in
  check int "no violations flagged" v0 (Obs.count c_viol);
  check int "outcome untouched" 12 (List.length o.Scheduler.placed)

let test_audit_with_migration_repair () =
  let w = two_conflicting_apps () in
  let cluster = fresh_cluster w ~n_machines:3 in
  let batch = w.Workload.containers in
  Array.iter
    (fun c -> ignore (Cluster.place ~force:true cluster c 0))
    batch;
  let outcome = outcome_placed cluster batch in
  let amended, unrepaired =
    Audit.run
      ~place:(fun cl c -> Aladdin.Migration.repair_placement cl c)
      cluster ~batch ~outcome
  in
  check int "migration policy repairs too" 0 (List.length unrepaired);
  check int "both placed" 2 (List.length amended.Scheduler.placed)

(* ---------- fault harness: revocation + stream position ---------- *)

let test_pick_revocation_skips_offline () =
  Fault.install (Fault.make ~machine_revocation:1.0 ~seed:9 ());
  Fun.protect ~finally:Fault.clear (fun () ->
      let c = Obs.counter "fault.revoked_machines" in
      let v0 = Obs.count c in
      for _ = 1 to 20 do
        match
          Fault.pick_revocation ~is_offline:(fun m -> m = 0) ~n_machines:2 ()
        with
        | Some m -> check int "never the offline machine" 1 m
        | None -> Alcotest.fail "rate 1.0 must fire"
      done;
      check int "each real revocation counted once" (v0 + 20) (Obs.count c);
      (match Fault.pick_revocation ~is_offline:(fun _ -> true) ~n_machines:2 () with
      | None -> ()
      | Some _ -> Alcotest.fail "all machines down: nothing to revoke");
      check int "no-op revocation not counted" (v0 + 20) (Obs.count c))

let test_fault_stream_fast_forward () =
  let cfg = Fault.make ~machine_revocation:0.5 ~seed:77 () in
  Fault.install cfg;
  let picks n =
    List.init n (fun _ -> Fault.pick_revocation ~n_machines:8 ())
  in
  let _first = picks 6 in
  let rest_ref = picks 6 in
  (* replay: reinstall, fast-forward past the first 6 picks, and the
     stream must continue identically *)
  Fault.install cfg;
  let _ = picks 6 in
  let pos = Option.get (Fault.stream_position ()) in
  Fault.install cfg;
  let d, f, k = pos in
  Fault.fast_forward ~kill_countdown:k ~draws:d ~failures_left:f ();
  let rest = picks 6 in
  Fault.clear ();
  check bool "fast-forwarded stream matches" true (rest = rest_ref)

(* ---------- with_transaction: revocation lands mid-batch ---------- *)

(* The edge admitted in the restore comment: a machine goes offline (and
   is drained) while a batch is in flight, then the batch fails. The
   restore cannot re-seat containers on the dead machine — they must be
   counted as restore drops, while every other pre-batch placement comes
   back exactly. *)
let test_restore_after_midbatch_revocation () =
  let w = uniform_workload () in
  let cluster = fresh_cluster w ~n_machines:4 in
  let cs = w.Workload.containers in
  ignore (Cluster.place cluster cs.(0) 0);
  ignore (Cluster.place cluster cs.(1) 0);
  ignore (Cluster.place cluster cs.(2) 1);
  ignore (Cluster.place cluster cs.(3) 1);
  let revoker =
    {
      Scheduler.name = "revoker";
      schedule =
        (fun cl _batch ->
          Cluster.set_offline cl 0 true;
          ignore (Cluster.drain cl 0);
          raise (Fault.Injected "mid-batch revocation"));
    }
  in
  let t =
    Scheduler.with_transaction ~prefix:"regress"
      ~recoverable:Scheduler.faults_recoverable revoker
  in
  let c_drops = Obs.counter "regress.restore_drops" in
  let d0 = Obs.count c_drops in
  let wave = Array.sub cs 4 4 in
  let o = t.Scheduler.schedule cluster wave in
  check int "batch rejected wholesale" 4 (List.length o.Scheduler.undeployed);
  check int "containers on the dead machine dropped" (d0 + 2)
    (Obs.count c_drops);
  check int "dead machine left empty" 0
    (Machine.n_containers (Cluster.machine cluster 0));
  check int "surviving machine restored" 2
    (Machine.n_containers (Cluster.machine cluster 1));
  check bool "machine stays offline through restore" true
    (Cluster.is_offline cluster 0)

(* ---------- journal ---------- *)

let test_journal_roundtrip_and_torn_tail () =
  let path = Filename.temp_file "aladdin_journal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let j = Journal.create path in
      let c1 =
        {
          Journal.next_pos = 16;
          placements = [ (0, 3); (1, 2) ];
          offline = [ 5 ];
          fault = Some (42, -1, 3);
          serve = Some (16, 0);
        }
      in
      let c2 =
        {
          Journal.next_pos = 32;
          placements = [ (0, 3); (1, 2); (2, 0) ];
          offline = [ 5; 1 ];
          fault = None;
          serve = None;
        }
      in
      Journal.append j c1;
      Journal.append j c2;
      Journal.close j;
      check bool "roundtrip" true (Journal.load path = [ c1; c2 ]);
      (* simulate a crash mid-write: a torn, checksum-less record *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "C 48 F 99 -1 0 O 0 P 2 7";
      close_out oc;
      check bool "torn tail dropped" true (Journal.load path = [ c1; c2 ]);
      check bool "last is the valid commit" true (Journal.last path = Some c2))

let test_journal_kill_resume_reproduces_placements () =
  let w = small_workload 42 in
  let n_machines = machines_for w ~headroom:1.3 in
  let base () =
    Fault.make ~machine_revocation:0.4 ~solver_step_failure:0.05 ~seed:42 ()
  in
  (* uninterrupted reference run *)
  Fault.install (base ());
  let r_ref =
    Fun.protect ~finally:Fault.clear (fun () ->
        Replay.run ~batch:16
          (Aladdin.Aladdin_scheduler.make ())
          ~cluster:(fresh_cluster w ~n_machines)
          ~containers:w.Workload.containers)
  in
  let fp_ref =
    Journal.placement_fingerprint (Cluster.placements r_ref.Replay.cluster)
  in
  (* journaled run, killed after the third commit *)
  let path = Filename.temp_file "aladdin_journal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let j = Journal.create path in
      Fault.install { (base ()) with Fault.process_kill_after = 2 };
      (match
         Replay.run ~batch:16 ~journal:j
           (Aladdin.Aladdin_scheduler.make ())
           ~cluster:(fresh_cluster w ~n_machines)
           ~containers:w.Workload.containers
       with
      | _ -> Alcotest.fail "the kill probe must fire"
      | exception Fault.Killed _ -> ());
      Journal.close j;
      Fault.clear ();
      (* resume from the last durable commit *)
      let commit = Option.get (Journal.last path) in
      check bool "three waves committed before death" true
        (commit.Journal.next_pos = 48);
      let c_resumes = Obs.counter "journal.resumes" in
      let r0 = Obs.count c_resumes in
      Fault.install (base ());
      let j2 = Journal.open_append path in
      let r2 =
        Fun.protect
          ~finally:(fun () ->
            Fault.clear ();
            Journal.close j2)
          (fun () ->
            Replay.run ~batch:16 ~journal:j2 ~resume:commit
              (Aladdin.Aladdin_scheduler.make ())
              ~cluster:(fresh_cluster w ~n_machines)
              ~containers:w.Workload.containers)
      in
      check int "resume counted" (r0 + 1) (Obs.count c_resumes);
      check int "resumed placements = uninterrupted placements" fp_ref
        (Journal.placement_fingerprint
           (Cluster.placements r2.Replay.cluster)))

(* A garbled record *mid-file* is handled like the torn tail — typed
   corruption, suffix dropped, resume from the last good commit. The old
   decoder hit [failwith "journal keyword mismatch"] on exactly this
   shape (valid checksum, displaced keyword), defeating crash recovery on
   a damaged journal. *)
let journal_checksum s =
  let h = ref 5381 in
  String.iter
    (fun ch -> h := (((!h lsl 5) + !h) + Char.code ch) land 0x3FFFFFFF)
    s;
  !h

let test_journal_midfile_corruption_resumes_from_last_good () =
  let w = small_workload 9 in
  let n_machines = machines_for w ~headroom:1.3 in
  let r_ref =
    Replay.run ~batch:16
      (Aladdin.Aladdin_scheduler.make ())
      ~cluster:(fresh_cluster w ~n_machines)
      ~containers:w.Workload.containers
  in
  let fp_ref =
    Journal.placement_fingerprint (Cluster.placements r_ref.Replay.cluster)
  in
  let path = Filename.temp_file "aladdin_journal" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let j = Journal.create path in
      ignore
        (Replay.run ~batch:16 ~journal:j
           (Aladdin.Aladdin_scheduler.make ())
           ~cluster:(fresh_cluster w ~n_machines)
           ~containers:w.Workload.containers);
      Journal.close j;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun s -> s <> "")
      in
      let n = List.length lines in
      check bool "several commits journaled" true (n >= 3);
      let mid = n / 2 in
      (* garble the framing keyword of the middle record but keep its
         checksum valid: the exact shape the old failwith died on *)
      let garble line =
        let body =
          match String.rindex_opt line '#' with
          | Some i -> String.sub line 0 (i - 1)
          | None -> Alcotest.fail "record has no checksum"
        in
        let b = Bytes.of_string body in
        let rec find i =
          if i + 2 >= Bytes.length b then Alcotest.fail "no F keyword"
          else if
            Bytes.get b i = ' '
            && Bytes.get b (i + 1) = 'F'
            && Bytes.get b (i + 2) = ' '
          then i + 1
          else find (i + 1)
        in
        Bytes.set b (find 0) 'X';
        let body = Bytes.to_string b in
        Printf.sprintf "%s # %d" body (journal_checksum body)
      in
      let lines = List.mapi (fun i l -> if i = mid then garble l else l) lines in
      Out_channel.with_open_text path (fun oc ->
          List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines);
      (match Journal.decode (List.nth lines mid) with
      | Error (Journal.Bad_keyword { expected = "F"; got = "X" }) -> ()
      | Error c ->
          Alcotest.failf "wrong corruption class: %s"
            (Format.asprintf "%a" Journal.pp_corruption c)
      | Ok _ -> Alcotest.fail "tampered record decoded");
      let c_corrupt = Obs.counter "journal.corrupt_records" in
      let c_dropped = Obs.counter "journal.dropped_commits" in
      let b_corrupt = Obs.count c_corrupt in
      let b_dropped = Obs.count c_dropped in
      let commits = Journal.load path in
      check int "only the pre-corruption prefix survives" mid
        (List.length commits);
      check int "corrupt record counted" (b_corrupt + 1) (Obs.count c_corrupt);
      check int "dropped suffix commits counted" (b_dropped + (n - mid - 1))
        (Obs.count c_dropped);
      let commit = Option.get (Journal.last path) in
      check int "resume point is the last good commit" (16 * mid)
        commit.Journal.next_pos;
      let r2 =
        Replay.run ~batch:16 ~resume:commit
          (Aladdin.Aladdin_scheduler.make ())
          ~cluster:(fresh_cluster w ~n_machines)
          ~containers:w.Workload.containers
      in
      check int "resumed run reproduces uninterrupted placements" fp_ref
        (Journal.placement_fingerprint
           (Cluster.placements r2.Replay.cluster)))

let () =
  Alcotest.run "robustness"
    [
      ( "deadline",
        [
          Alcotest.test_case "step budget" `Quick test_deadline_steps;
          Alcotest.test_case "wall pre-expired" `Quick
            test_deadline_wall_pre_expired;
          Alcotest.test_case "unbounded" `Quick test_deadline_unbounded;
          Alcotest.test_case "ambient nesting" `Quick test_ambient_nesting;
        ] );
      ( "solver-deadline",
        [
          Alcotest.test_case "mincost typed error" `Quick
            test_mincost_typed_error;
          Alcotest.test_case "registry converts all backends" `Quick
            test_registry_converts_raising_backends;
          Alcotest.test_case "ambient expiry propagates" `Quick
            test_ambient_expiry_propagates_as_exception;
          Alcotest.test_case "roomy budget completes" `Quick
            test_solve_completes_under_roomy_deadline;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "registry ladder escalates" `Quick
            test_solve_ladder_escalates;
          Alcotest.test_case "registry ladder unbudgeted" `Quick
            test_solve_ladder_first_rung_without_deadline;
          Alcotest.test_case "escalates and restores" `Quick
            test_with_deadline_escalates_and_restores;
          Alcotest.test_case "unbudgeted first rung wins" `Quick
            test_with_deadline_unbudgeted_first_rung_wins;
          Alcotest.test_case "sheds lowest priority" `Quick
            test_with_deadline_sheds_lowest_priority;
          Alcotest.test_case "zero budget terminates" `Quick
            test_with_deadline_zero_budget_terminates;
          Alcotest.test_case "aladdin+gokube under tight budget" `Quick
            test_aladdin_ladder_completes_under_tight_budget;
        ] );
      ( "audit",
        [
          Alcotest.test_case "repairs anti-affinity" `Quick
            test_audit_repairs_anti_affinity;
          Alcotest.test_case "repairs offline placement" `Quick
            test_audit_repairs_offline_placement;
          Alcotest.test_case "finds lost container" `Quick
            test_audit_finds_lost_container;
          Alcotest.test_case "repairs priority inversion" `Quick
            test_audit_repairs_priority_inversion;
          Alcotest.test_case "clean run, no false positives" `Quick
            test_audit_clean_run_no_false_positives;
          Alcotest.test_case "migration repair policy" `Quick
            test_audit_with_migration_repair;
        ] );
      ( "fault",
        [
          Alcotest.test_case "revocation skips offline" `Quick
            test_pick_revocation_skips_offline;
          Alcotest.test_case "stream fast-forward" `Quick
            test_fault_stream_fast_forward;
          Alcotest.test_case "restore after mid-batch revocation" `Quick
            test_restore_after_midbatch_revocation;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip + torn tail" `Quick
            test_journal_roundtrip_and_torn_tail;
          Alcotest.test_case "kill/resume reproduces placements" `Quick
            test_journal_kill_resume_reproduces_placements;
          Alcotest.test_case "mid-file corruption drops suffix, resumes"
            `Quick test_journal_midfile_corruption_resumes_from_last_good;
        ] );
    ]
