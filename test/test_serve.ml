(* Tests for the open-loop serving front end: admission queue semantics,
   batcher triggers, the runner end to end (underload, saturation, fault
   tolerance) and the load sweep. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let req ?(priority = 0) id =
  {
    Serve.Request.id;
    kind =
      Serve.Request.Place
        (Container.make ~id ~app:0 ~demand:(Resource.cpu_only 1.) ~priority
           ~arrival:id);
    priority;
    arrival = 0.;
  }

(* ---------- admission ---------- *)

let test_admission_fifo_and_priority_order () =
  let q = Serve.Admission.create ~bound:16 ~watermark:16 in
  List.iter
    (fun (id, p) ->
      match Serve.Admission.offer q (req ~priority:p id) with
      | Serve.Admission.Admitted [] -> ()
      | _ -> Alcotest.fail "unexpected backpressure")
    [ (0, 0); (1, 2); (2, 0); (3, 2); (4, 1) ];
  check int "length" 5 (Serve.Admission.length q);
  let ids =
    Serve.Admission.take q ~max:10
    |> List.map (fun (r : Serve.Request.t) -> r.id)
  in
  (* priority class 2 first (FIFO within), then 1, then 0 *)
  Alcotest.(check (list int)) "drain order" [ 1; 3; 4; 0; 2 ] ids;
  check int "drained" 0 (Serve.Admission.length q)

let test_admission_rejects_at_bound () =
  let q = Serve.Admission.create ~bound:3 ~watermark:3 in
  for i = 0 to 2 do
    ignore (Serve.Admission.offer q (req i))
  done;
  (* equal priority: no victim, reject *)
  (match Serve.Admission.offer q (req 3) with
  | Serve.Admission.Rejected -> ()
  | _ -> Alcotest.fail "expected rejection at bound");
  (* higher priority displaces the oldest lowest-priority entry *)
  (match Serve.Admission.offer q (req ~priority:1 4) with
  | Serve.Admission.Admitted [ shed ] -> check int "oldest shed" 0 shed.id
  | _ -> Alcotest.fail "expected displacement");
  check int "still at bound" 3 (Serve.Admission.length q)

let test_admission_watermark_sheds_lower () =
  let q = Serve.Admission.create ~bound:16 ~watermark:3 in
  for i = 0 to 2 do
    ignore (Serve.Admission.offer q (req i))
  done;
  (* crossing the watermark with a higher-priority arrival sheds the
     lowest class back down to the watermark *)
  (match Serve.Admission.offer q (req ~priority:2 3) with
  | Serve.Admission.Admitted [ shed ] -> check int "oldest shed" 0 shed.id
  | Serve.Admission.Admitted l ->
      Alcotest.failf "expected 1 shed, got %d" (List.length l)
  | Serve.Admission.Rejected -> Alcotest.fail "not at bound");
  (* an equal-priority arrival cannot shed anyone *)
  (match Serve.Admission.offer q (req 5) with
  | Serve.Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "equal priority must not shed");
  check int "above watermark tolerated" 4 (Serve.Admission.length q)

(* ---------- batcher ---------- *)

let test_batcher_deadline_flush () =
  let des : int Des.t = Des.create () in
  let b = Serve.Batcher.create ~size:8 ~deadline:0.5 in
  Serve.Batcher.arm b des ~flush:(fun g -> g);
  Serve.Batcher.arm b des ~flush:(fun g -> g);
  check int "one timer armed" 1 (Des.pending des);
  (match Des.next des with
  | Some (t, gen) ->
      check bool "fires at deadline" true (t = 0.5);
      check bool "current generation" true
        (Serve.Batcher.note_fired b ~gen);
      check bool "stale after fire" false (Serve.Batcher.note_fired b ~gen)
  | None -> Alcotest.fail "flush did not fire");
  check bool "ready by size" true (Serve.Batcher.size_ready b ~queued:8)

let test_batcher_disarm_cancels () =
  let des : int Des.t = Des.create () in
  let b = Serve.Batcher.create ~size:8 ~deadline:0.5 in
  Serve.Batcher.arm b des ~flush:(fun g -> g);
  Serve.Batcher.disarm b des;
  check int "event cancelled" 0 (Des.pending des);
  check bool "des drained" true (Des.next des = None);
  (* re-arm uses a fresh generation *)
  Serve.Batcher.arm b des ~flush:(fun g -> g);
  match Des.next des with
  | Some (_, gen) ->
      check bool "new generation valid" true
        (Serve.Batcher.note_fired b ~gen)
  | None -> Alcotest.fail "re-armed flush did not fire"

(* ---------- runner ---------- *)

let small_workload seed =
  Alibaba.generate { (Alibaba.scaled 0.004) with Alibaba.seed = seed }

let cluster_for w n =
  let topo = Workload.topology w ~n_machines:n in
  Cluster.create topo ~constraints:(Workload.constraint_set w)

let base_cfg =
  {
    Serve.Runner.rate = 500.;
    duration = 0.5;
    queue_bound = 256;
    watermark = 192;
    batch_size = 16;
    batch_deadline = 0.005;
    overload_deadline_ms = 25.;
    service_ms = 0.;
    seed = 11;
    modulation = Serve.Arrivals.Steady;
  }

let test_runner_underload_slo () =
  let w = small_workload 3 in
  let p =
    Serve.Runner.run base_cfg
      ~sched:(Gokube.make ())
      ~cluster:(cluster_for w 64)
      ~workload:w
  in
  check bool "arrivals happened" true (p.arrivals > 100);
  check int "all accounted" p.arrivals (p.admitted + p.rejected);
  check bool "batches ran" true (p.batches > 0);
  check bool "containers placed" true (p.placed > 0);
  check bool "latency recorded" true (p.samples > 0);
  check bool "tails monotone" true
    (p.p50_ms <= p.p99_ms && p.p99_ms <= p.p999_ms && p.p999_ms <= p.max_ms);
  check bool "virtual time advanced" true (p.sim_s > 0.);
  check bool "no failed batches" true (p.failed_batches = 0)

let test_runner_saturates_and_engages_ladder () =
  let w = small_workload 5 in
  (* a deliberately slow scheduler: ~1ms of wall time per batch, so a
     4000/s open-loop rate is far beyond capacity and the tiny queue
     must shed/reject and cross its watermark *)
  let inner = Gokube.make () in
  let slow =
    {
      Scheduler.name = "slow";
      schedule =
        (fun cluster batch ->
          let t0 = Obs.now_ns () in
          while Int64.sub (Obs.now_ns ()) t0 < 1_000_000L do
            ()
          done;
          inner.Scheduler.schedule cluster batch);
    }
  in
  let rung_hits = Obs.counter "ladder.rung.serve" in
  let before = Obs.count rung_hits in
  let p =
    Serve.Runner.run
      {
        base_cfg with
        rate = 50_000.;
        duration = 0.1;
        queue_bound = 64;
        watermark = 32;
        overload_deadline_ms = 200.;
      }
      ~sched:slow
      ~cluster:(cluster_for w 64)
      ~workload:w
  in
  check bool "saturated" true p.saturated;
  check bool "backpressure engaged" true (p.rejected > 0 || p.shed > 0);
  check bool "queue crossed the watermark" true (p.queue_depth_max > 32);
  check bool "overload batches took the ladder" true (p.overload_batches > 0);
  check bool "ladder first rung counted" true
    (Obs.count rung_hits - before > 0);
  check int "all accounted" p.arrivals (p.admitted + p.rejected)

let test_runner_survives_injected_faults () =
  let w = small_workload 7 in
  (* every batch entry trips until the budget runs out; the runner must
     fail those batches cleanly and keep serving *)
  Fault.install
    (Fault.make ~solver_step_failure:1.0 ~solver_failure_budget:3 ~seed:13 ());
  let sched = Scheduler.with_faults ~label:"serve.test" (Gokube.make ()) in
  let p =
    Serve.Runner.run base_cfg ~sched ~cluster:(cluster_for w 64) ~workload:w
  in
  Fault.clear ();
  check int "three batches failed" 3 p.failed_batches;
  check bool "failed requests counted" true (p.failed_requests > 0);
  check bool "serving continued" true (p.batches > p.failed_batches);
  check bool "later batches placed containers" true (p.placed > 0)

let test_sweep_reaches_saturation () =
  let w = small_workload 9 in
  let cfg = { base_cfg with rate = 0.; duration = 0.2; queue_bound = 64;
              watermark = 48 } in
  let r =
    Serve.Runner.sweep ~max_points:6 cfg
      ~make_sched:(fun () -> Gokube.make ())
      ~make_cluster:(fun () -> cluster_for w 48)
      ~workload:w
  in
  check bool "calibrated base rate" true r.calibrated;
  check bool "base rate positive" true (r.base_rate > 0.);
  check bool "has points" true (List.length r.points > 0);
  check bool "rates increase" true
    (let rec mono = function
       | (a : Serve.Runner.point) :: (b :: _ as rest) ->
           a.rate < b.rate && mono rest
       | _ -> true
     in
     mono r.points);
  let last = List.nth r.points (List.length r.points - 1) in
  check bool "sweep ends saturated" true last.saturated;
  (* the JSON emitters produce something structurally sane *)
  let json = Serve.Runner.sweep_json cfg r in
  check bool "json has points" true
    (String.length json > 64
    && String.sub json 0 1 = "{"
    && String.sub json (String.length json - 2) 2 = "]}")

(* ---------- crash-consistent resume ---------- *)

(* Crash consistency needs replayable batch timing, so the resume tests
   pin a fixed virtual service time. *)
let resume_cfg =
  {
    base_cfg with
    rate = 400.;
    duration = 0.3;
    queue_bound = 128;
    watermark = 96;
    service_ms = 2.;
    seed = 17;
  }

let resume_workload () = small_workload 13

let run_serve ?journal cfg w =
  let cluster = cluster_for w 64 in
  let p = Serve.Runner.run ?journal cfg ~sched:(Gokube.make ()) ~cluster
            ~workload:w in
  (p, Journal.placement_fingerprint (Cluster.placements cluster))

(* Kill a journaled serving run at an arbitrary probe offset, resume it,
   and demand the resumed run be indistinguishable from an uninterrupted
   one: identical placements, identical admission accounting, monotone
   latency tails, and exactly the journaled prefix replayed. *)
let resume_drill ~ref_point ~ref_fp w kill =
  let path = Filename.temp_file "serve_resume" ".log" in
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Sys.remove path)
    (fun () ->
      Fault.install (Fault.make ~process_kill_after:kill ~seed:3 ());
      (match run_serve ~journal:path resume_cfg w with
      | _ -> Alcotest.fail "kill probe never fired"
      | exception Fault.Killed _ -> ());
      Fault.clear ();
      let n_prefix = List.length (Journal.load path) in
      let replayed0 = Obs.count (Obs.counter "serve.resume.replayed_batches") in
      let p, fp = run_serve ~journal:path resume_cfg w in
      let ctx fmt = Printf.sprintf ("kill %d: " ^^ fmt) kill in
      check bool (ctx "placements identical") true (fp = ref_fp);
      check int (ctx "arrivals") ref_point.Serve.Runner.arrivals p.arrivals;
      check int (ctx "admitted") ref_point.Serve.Runner.admitted p.admitted;
      check int (ctx "rejected") ref_point.Serve.Runner.rejected p.rejected;
      check int (ctx "batches") ref_point.Serve.Runner.batches p.batches;
      check int (ctx "placed") ref_point.Serve.Runner.placed p.placed;
      check int (ctx "accounting exact") p.arrivals (p.admitted + p.rejected);
      check int (ctx "journaled prefix replayed")
        n_prefix
        (Obs.count (Obs.counter "serve.resume.replayed_batches") - replayed0);
      check bool (ctx "tails monotone") true
        (p.p50_ms <= p.p99_ms && p.p99_ms <= p.p999_ms
        && p.p999_ms <= p.max_ms))

let test_resume_fixed_kill_offsets () =
  Fault.clear ();
  let w = resume_workload () in
  let ref_point, ref_fp = run_serve resume_cfg w in
  check bool "reference run served traffic" true
    (ref_point.batches > 2 && ref_point.placed > 0);
  (* offset 0 kills before the first commit: resume from an empty journal
     is a fresh run; later offsets leave a real prefix *)
  List.iter (resume_drill ~ref_point ~ref_fp w) [ 0; 1; 2; 5 ]

let resume_prop =
  QCheck.Test.make ~count:6 ~name:"resume is exact at any kill offset"
    QCheck.(int_range 0 9)
    (fun kill ->
      Fault.clear ();
      let w = resume_workload () in
      let ref_point, ref_fp = run_serve resume_cfg w in
      resume_drill ~ref_point ~ref_fp w kill;
      true)

let test_arrivals_deterministic_and_modulated () =
  let gaps seed modulation =
    let a =
      Serve.Arrivals.create ~modulation ~rate:100. ~seed ()
    in
    let now = ref 0. in
    List.init 200 (fun _ ->
        let g = Serve.Arrivals.next_gap a ~now:!now in
        now := !now +. g;
        g)
  in
  check bool "same seed, same stream" true
    (gaps 4 Serve.Arrivals.Steady = gaps 4 Serve.Arrivals.Steady);
  check bool "different seed, different stream" true
    (gaps 4 Serve.Arrivals.Steady <> gaps 5 Serve.Arrivals.Steady);
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let steady = mean (gaps 4 Serve.Arrivals.Steady) in
  check bool "steady mean near 1/rate" true
    (steady > 0.005 && steady < 0.02);
  (* a burst modulation strictly increases the average rate *)
  let burst =
    mean (gaps 4 (Serve.Arrivals.Burst { period = 0.1; duty = 0.5; amp = 4. }))
  in
  check bool "burst arrives faster" true (burst < steady)

let () =
  Alcotest.run "serve"
    [
      ( "admission",
        [
          Alcotest.test_case "fifo within, priority across" `Quick
            test_admission_fifo_and_priority_order;
          Alcotest.test_case "reject or displace at bound" `Quick
            test_admission_rejects_at_bound;
          Alcotest.test_case "watermark sheds lower priority" `Quick
            test_admission_watermark_sheds_lower;
        ] );
      ( "batcher",
        [
          Alcotest.test_case "deadline flush with generations" `Quick
            test_batcher_deadline_flush;
          Alcotest.test_case "size trigger cancels the flush" `Quick
            test_batcher_disarm_cancels;
        ] );
      ( "runner",
        [
          Alcotest.test_case "underload meets SLO accounting" `Quick
            test_runner_underload_slo;
          Alcotest.test_case "saturation sheds and takes the ladder" `Quick
            test_runner_saturates_and_engages_ladder;
          Alcotest.test_case "injected faults fail batches cleanly" `Quick
            test_runner_survives_injected_faults;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "load sweep reaches saturation" `Quick
            test_sweep_reaches_saturation;
          Alcotest.test_case "arrival process is seeded and modulated"
            `Quick test_arrivals_deterministic_and_modulated;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill/resume is exact at fixed offsets" `Quick
            test_resume_fixed_kill_offsets;
          QCheck_alcotest.to_alcotest resume_prop;
        ] );
    ]
