(* Differential testing of the flow solvers on seeded random networks:
   every max-flow solver must agree on the flow value, every min-cost
   solver must agree on (flow, cost) with a Bellman–Ford-based successive
   shortest path oracle, and each recorded assignment must be a feasible
   flow (conservation + capacity respect on every arc). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Generators and oracles come from the shared [Gen] module; aliases keep
   the test bodies unchanged. *)
let random_flow_graph = Gen.random_flow_graph
let random_dag = Gen.random_dag
let random_nonneg_graph = Gen.random_nonneg_graph
let assert_feasible = Gen.assert_feasible
let ssp_bellman_ford = Gen.ssp_bellman_ford
let mincost_exn = Gen.mincost_exn
let solve_exn = Gen.solve_exn
let registered = Gen.registered

(* ---------- max-flow differential ---------- *)

let test_maxflow_differential () =
  let rng = Rng.create 0xD1FF in
  for _case = 1 to 30 do
    let n = 8 + Rng.int rng 24 in
    let m = n * (2 + Rng.int rng 3) in
    let g, src, dst = random_flow_graph rng ~n ~m ~max_cap:20 in
    let f_dinic = Flownet.Dinic.run g ~src ~dst in
    assert_feasible g ~src ~dst ~value:f_dinic;
    Flownet.Graph.reset_flows g;
    let f_pr = Flownet.Push_relabel.run g ~src ~dst in
    assert_feasible g ~src ~dst ~value:f_pr;
    Flownet.Graph.reset_flows g;
    let f_ek = Flownet.Maxflow.run g ~src ~dst in
    assert_feasible g ~src ~dst ~value:f_ek;
    check int "dinic = push-relabel" f_dinic f_pr;
    check int "dinic = edmonds-karp" f_dinic f_ek
  done

(* ---------- min-cost differential ---------- *)

let test_mincost_differential () =
  let rng = Rng.create 0xC057 in
  for _case = 1 to 25 do
    let n = 6 + Rng.int rng 20 in
    let m = n * (2 + Rng.int rng 3) in
    let g, src, dst = random_dag rng ~n ~m ~max_cap:10 ~max_cost:50 in
    let ssp = mincost_exn g ~src ~dst in
    assert_feasible g ~src ~dst ~value:ssp.Flownet.Mincost.flow;
    Flownet.Graph.reset_flows g;
    let cs = Flownet.Cost_scaling.run g ~src ~dst in
    assert_feasible g ~src ~dst ~value:cs.Flownet.Mincost.flow;
    let bf_flow, bf_cost = ssp_bellman_ford g ~src ~dst in
    assert_feasible g ~src ~dst ~value:bf_flow;
    Flownet.Graph.reset_flows g;
    let max_flow = Flownet.Dinic.run g ~src ~dst in
    check int "ssp flow is maximal" max_flow ssp.Flownet.Mincost.flow;
    check int "ssp = cost-scaling (flow)" ssp.Flownet.Mincost.flow
      cs.Flownet.Mincost.flow;
    check int "ssp = cost-scaling (cost)" ssp.Flownet.Mincost.cost
      cs.Flownet.Mincost.cost;
    check int "ssp = bellman-ford oracle (flow)" ssp.Flownet.Mincost.flow
      bf_flow;
    check int "ssp = bellman-ford oracle (cost)" ssp.Flownet.Mincost.cost
      bf_cost
  done

(* ---------- warm-start differential ---------- *)

(* A warm re-solve must produce the same (flow, cost) as a cold solve, and
   must actually take the warm path (validated potentials, no SPFA). *)
let test_mincost_warm_matches_cold () =
  let rng = Rng.create 0xAB1E in
  let hits = Obs.counter "mincost.warm_hits" in
  for _case = 1 to 15 do
    let n = 6 + Rng.int rng 20 in
    let m = n * 3 in
    let g, src, dst = random_dag rng ~n ~m ~max_cap:10 ~max_cost:50 in
    let warm = Flownet.Mincost.warm_create () in
    let cold = mincost_exn ~warm g ~src ~dst in
    check bool "bootstrap potentials recorded" true
      (warm.Flownet.Mincost.pot_n = Flownet.Graph.n_vertices g);
    Flownet.Graph.reset_flows g;
    check bool "bootstrap potentials valid after reset" true
      (Flownet.Mincost.potential_valid g ~src warm.Flownet.Mincost.potential);
    let before = Obs.count hits in
    let rewarm = mincost_exn ~warm g ~src ~dst in
    check int "warm path taken" (before + 1) (Obs.count hits);
    check int "warm = cold (flow)" cold.Flownet.Mincost.flow
      rewarm.Flownet.Mincost.flow;
    check int "warm = cold (cost)" cold.Flownet.Mincost.cost
      rewarm.Flownet.Mincost.cost
  done

(* ---------- registry differential ---------- *)

let test_registry_lists_all_backends () =
  Alcotest.(check (list string))
    "four built-in backends"
    [ "cost-scaling"; "dinic"; "mincost"; "push-relabel" ]
    (Flownet.Registry.names ());
  check bool "unknown name" true (Flownet.Registry.find "simplex" = None);
  check bool "default registered" true
    (Flownet.Registry.find Flownet.Registry.default <> None)

(* Every registered backend, on the same random negative-cost DAGs: flows
   are maximal and feasible; backends claiming min-cost also match the
   Bellman–Ford successive-shortest-path oracle on cost. *)
let test_registry_differential () =
  let backends = registered () in
  let rng = Rng.create 0x4E61 in
  for _case = 1 to 20 do
    let n = 6 + Rng.int rng 20 in
    let m = n * (2 + Rng.int rng 3) in
    let g, src, dst = random_dag rng ~n ~m ~max_cap:10 ~max_cost:50 in
    let bf_flow, bf_cost = ssp_bellman_ford g ~src ~dst in
    List.iter
      (fun backend ->
        let name = Flownet.Registry.name backend in
        let caps = Flownet.Registry.caps backend in
        Flownet.Graph.reset_flows g;
        let s = solve_exn backend g ~src ~dst in
        assert_feasible g ~src ~dst ~value:s.Flownet.Mincost.flow;
        check int (name ^ " flow is maximal") bf_flow s.Flownet.Mincost.flow;
        if caps.Flownet.Solver_intf.min_cost then
          check int (name ^ " cost is optimal") bf_cost s.Flownet.Mincost.cost)
      backends
  done

(* The near-max_int regression case from the error-path PR, across the
   whole registry. Saturating adds make a two-big-hop label equal max_int =
   "unreachable", so path-based min-cost solvers push nothing; pure
   max-flow backends ignore costs entirely and push the single unit. This
   divergence is semantics, not a bug — pin it for every backend. *)
let test_registry_near_max_int () =
  let big = max_int - 10 in
  List.iter
    (fun backend ->
      let name = Flownet.Registry.name backend in
      let g = Flownet.Graph.create 3 in
      ignore (Flownet.Graph.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:big);
      ignore (Flownet.Graph.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:big);
      let s = solve_exn backend g ~src:0 ~dst:2 in
      (* cost-scaling multiplies costs by (n+1), so its near-max_int cost
         wraps — only the flow value is meaningful there. *)
      let expected = if name = "mincost" then 0 else 1 in
      check int (name ^ " near-max_int flow") expected s.Flownet.Mincost.flow)
    (registered ())

(* Deterministic negative-cost-arc case: the diamond where the cheap route
   uses a negative shortcut. *)
let test_registry_negative_arc () =
  List.iter
    (fun backend ->
      let caps = Flownet.Registry.caps backend in
      let name = Flownet.Registry.name backend in
      let g = Flownet.Graph.create 4 in
      ignore (Flownet.Graph.add_arc g ~src:0 ~dst:1 ~cap:2 ~cost:1);
      ignore (Flownet.Graph.add_arc g ~src:0 ~dst:2 ~cap:2 ~cost:4);
      ignore (Flownet.Graph.add_arc g ~src:1 ~dst:2 ~cap:2 ~cost:(-2));
      ignore (Flownet.Graph.add_arc g ~src:2 ~dst:3 ~cap:3 ~cost:1);
      let s = solve_exn backend g ~src:0 ~dst:3 in
      check int (name ^ " flow") 3 s.Flownet.Mincost.flow;
      if caps.Flownet.Solver_intf.min_cost then
        (* 2 units via 0→1→2→3 at cost 0 each, 1 unit via 0→2→3 at cost 5 *)
        check int (name ^ " cost") 5 s.Flownet.Mincost.cost)
    (registered ())

(* The max_flow cap, for backends that claim it: capped flow = min(cap,
   max-flow), still feasible, still min-cost for that value. *)
let test_registry_max_flow_cap () =
  let rng = Rng.create 0xCA9 in
  for _case = 1 to 10 do
    let n = 6 + Rng.int rng 16 in
    let g, src, dst = random_dag rng ~n ~m:(n * 3) ~max_cap:8 ~max_cost:30 in
    let full = ssp_bellman_ford g ~src ~dst in
    let cap = 1 + Rng.int rng (max 1 (fst full)) in
    List.iter
      (fun backend ->
        let caps = Flownet.Registry.caps backend in
        if caps.Flownet.Solver_intf.supports_max_flow then begin
          let name = Flownet.Registry.name backend in
          Flownet.Graph.reset_flows g;
          let s = solve_exn backend ~max_flow:cap g ~src ~dst in
          check int (name ^ " capped flow") (min cap (fst full))
            s.Flownet.Mincost.flow;
          assert_feasible g ~src ~dst ~value:s.Flownet.Mincost.flow
        end)
      (registered ())
  done

(* truncate must restore the adjacency structure exactly: solving after
   mark/add/truncate equals solving the original graph. *)
let test_truncate_restores_solver_results () =
  let rng = Rng.create 0x7070 in
  for _case = 1 to 15 do
    let n = 8 + Rng.int rng 16 in
    let g, src, dst = random_flow_graph rng ~n ~m:(n * 3) ~max_cap:15 in
    let reference = Flownet.Dinic.run g ~src ~dst in
    Flownet.Graph.reset_flows g;
    let mark = Flownet.Graph.mark g in
    for _ = 1 to 1 + Rng.int rng 8 do
      let s = Rng.int rng n and d = Rng.int rng n in
      if s <> d then
        ignore
          (Flownet.Graph.add_arc g ~src:s ~dst:d ~cap:(1 + Rng.int rng 15)
             ~cost:0)
    done;
    ignore (Flownet.Dinic.run g ~src ~dst);
    Flownet.Graph.truncate g mark;
    Flownet.Graph.reset_flows g;
    check int "same max flow after truncate" reference
      (Flownet.Dinic.run g ~src ~dst)
  done

(* ---------- Dial bucket queue vs binary heap ---------- *)

let with_policy p f =
  let old = Flownet.Dijkstra.queue_policy () in
  Flownet.Dijkstra.set_queue_policy p;
  Fun.protect ~finally:(fun () -> Flownet.Dijkstra.set_queue_policy old) f

let dijkstra_dists p g ~n ~potential =
  let r =
    with_policy p (fun () -> Flownet.Dijkstra.run g ~src:0 ~potential)
  in
  Array.init n (fun v -> r.Flownet.Dijkstra.dist.{v})

(* The queue is an implementation detail: both must produce identical
   distance labels on random graphs with plenty of zero-cost arcs. *)
let test_dial_heap_dijkstra () =
  let rng = Rng.create 0xD1A1 in
  for _case = 1 to 25 do
    let n = 8 + Rng.int rng 24 in
    let g = random_nonneg_graph rng ~n ~max_cost:50 in
    let potential = Flownet.Ia.create n in
    Alcotest.(check (array int))
      "dial = heap distances"
      (dijkstra_dists Flownet.Dijkstra.Force_heap g ~n ~potential)
      (dijkstra_dists Flownet.Dijkstra.Force_dial g ~n ~potential)
  done

(* Arc costs far beyond the bucket span: Force_dial must overflow, migrate
   its frontier into the heap mid-run, and still match the heap's labels. *)
let test_dial_overflow_migration () =
  let rng = Rng.create 0xD1A2 in
  let overflows = Obs.counter "dijkstra.dial_overflows" in
  let before = Obs.count overflows in
  for _case = 1 to 10 do
    let n = 8 + Rng.int rng 16 in
    let g = random_nonneg_graph rng ~n ~max_cost:(1 lsl 21) in
    let potential = Flownet.Ia.create n in
    Alcotest.(check (array int))
      "dial-with-overflow = heap distances"
      (dijkstra_dists Flownet.Dijkstra.Force_heap g ~n ~potential)
      (dijkstra_dists Flownet.Dijkstra.Force_dial g ~n ~potential)
  done;
  check bool "at least one dial overflow exercised" true
    (Obs.count overflows > before)

(* Near-max_int potentials: reduced costs stay small (the classic warm
   scheduler regime), so Dial must serve the run without overflow even
   though the absolute labels are enormous. *)
let test_dial_large_potentials () =
  let rng = Rng.create 0xD1A3 in
  for _case = 1 to 10 do
    let n = 8 + Rng.int rng 16 in
    let g = random_nonneg_graph rng ~n ~max_cost:0 in
    (* uniform potentials shift every reduced cost by zero *)
    let potential = Flownet.Ia.create ~fill:(max_int / 2) n in
    Alcotest.(check (array int))
      "dial = heap under huge uniform potentials"
      (dijkstra_dists Flownet.Dijkstra.Force_heap g ~n ~potential)
      (dijkstra_dists Flownet.Dijkstra.Force_dial g ~n ~potential)
  done

(* Full solver differential with the bucket queue forced: min-cost results
   must be queue-independent on random DAGs, warm restarts included. *)
let test_dial_mincost_differential () =
  let rng = Rng.create 0xD1A4 in
  for _case = 1 to 20 do
    let n = 6 + Rng.int rng 12 in
    let m = n * 2 in
    let g, src, dst = random_dag rng ~n ~m ~max_cap:10 ~max_cost:50 in
    let heap_stats =
      with_policy Flownet.Dijkstra.Force_heap (fun () ->
          let s = mincost_exn g ~src ~dst in
          Flownet.Graph.reset_flows g;
          s)
    in
    let dial_stats =
      with_policy Flownet.Dijkstra.Force_dial (fun () ->
          let s = mincost_exn g ~src ~dst in
          Flownet.Graph.reset_flows g;
          s)
    in
    check int "flow (dial = heap)" heap_stats.Flownet.Mincost.flow
      dial_stats.Flownet.Mincost.flow;
    check int "cost (dial = heap)" heap_stats.Flownet.Mincost.cost
      dial_stats.Flownet.Mincost.cost
  done

let () =
  Alcotest.run "differential"
    [
      ( "maxflow",
        [
          Alcotest.test_case "dinic = push-relabel = edmonds-karp" `Quick
            test_maxflow_differential;
        ] );
      ( "mincost",
        [
          Alcotest.test_case "ssp = cost-scaling = bellman-ford oracle" `Quick
            test_mincost_differential;
          Alcotest.test_case "warm restart matches cold" `Quick
            test_mincost_warm_matches_cold;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lists all backends" `Quick
            test_registry_lists_all_backends;
          Alcotest.test_case "all backends agree on random DAGs" `Quick
            test_registry_differential;
          Alcotest.test_case "near-max_int case per backend" `Quick
            test_registry_near_max_int;
          Alcotest.test_case "negative-cost-arc case per backend" `Quick
            test_registry_negative_arc;
          Alcotest.test_case "max_flow cap honoured where claimed" `Quick
            test_registry_max_flow_cap;
        ] );
      ( "arena",
        [
          Alcotest.test_case "truncate restores solver results" `Quick
            test_truncate_restores_solver_results;
        ] );
      ( "dial",
        [
          Alcotest.test_case "dial = heap on random graphs" `Quick
            test_dial_heap_dijkstra;
          Alcotest.test_case "overflow migrates to heap mid-run" `Quick
            test_dial_overflow_migration;
          Alcotest.test_case "huge uniform potentials" `Quick
            test_dial_large_potentials;
          Alcotest.test_case "mincost with bucket queue forced" `Quick
            test_dial_mincost_differential;
        ] );
    ]
