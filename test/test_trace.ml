(* Tests for the trace substrate: RNG, samplers, the calibrated generator,
   arrival orders and serialisation. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* unwrap a trace-parsing result, failing the test with the typed error *)
let ok_exn = function
  | Ok w -> w
  | Error e -> Alcotest.failf "parse error: %s" (Trace_error.to_string e)

let err_exn = function
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error (e : Trace_error.t) -> e

(* ---------- rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done;
  let c = Rng.create 8 in
  check bool "different seed differs" true
    (Rng.next_int64 (Rng.create 7) <> Rng.next_int64 c)

let test_rng_float_range () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    check bool "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_int_range () =
  let r = Rng.create 2 in
  for _ = 1 to 10_000 do
    let i = Rng.int r 7 in
    check bool "in range" true (i >= 0 && i < 7)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_split_independent () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  check bool "child differs from parent continuation" true
    (Rng.next_int64 child <> Rng.next_int64 parent)

(* ---------- distributions ---------- *)

let test_uniform_int () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Distribution.uniform_int r ~lo:3 ~hi:5 in
    check bool "bounds" true (v >= 3 && v <= 5)
  done

let test_categorical () =
  let r = Rng.create 5 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Distribution.categorical r [| (8., "a"); (2., "b") |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let a = Hashtbl.find counts "a" in
  check bool "roughly 80%" true (a > 7500 && a < 8500);
  Alcotest.check_raises "empty" (Invalid_argument "Distribution.categorical: empty")
    (fun () -> ignore (Distribution.categorical r [||]))

let test_zipf_bounds () =
  let r = Rng.create 6 in
  for _ = 1 to 2000 do
    let v = Distribution.zipf r ~n:10 ~s:1.2 in
    check bool "bounds" true (v >= 1 && v <= 10)
  done

let test_zipf_skew () =
  let r = Rng.create 7 in
  let ones = ref 0 in
  for _ = 1 to 5000 do
    if Distribution.zipf r ~n:50 ~s:1.2 = 1 then incr ones
  done;
  check bool "head heavy" true (!ones > 1000)

let test_pareto_bounds () =
  let r = Rng.create 8 in
  for _ = 1 to 2000 do
    let v = Distribution.bounded_pareto r ~alpha:1.5 ~lo:50 ~hi:2500 in
    check bool "bounds" true (v >= 50 && v <= 2500)
  done

let test_shuffle_permutes () =
  let r = Rng.create 9 in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Distribution.shuffle r b;
  check bool "same multiset" true
    (List.sort Int.compare (Array.to_list b) = Array.to_list a);
  check bool "actually moved" true (b <> a)

let test_sample_without_replacement () =
  let r = Rng.create 10 in
  let s = Distribution.sample_without_replacement r ~k:5 ~n:10 in
  check int "count" 5 (List.length s);
  check bool "distinct" true (List.length (List.sort_uniq Int.compare s) = 5);
  check bool "in range" true (List.for_all (fun v -> v >= 0 && v < 10) s)

(* ---------- generator ---------- *)

let small_params = { (Alibaba.scaled 0.02) with Alibaba.seed = 11 }

let test_generator_deterministic () =
  let w1 = Alibaba.generate small_params in
  let w2 = Alibaba.generate small_params in
  check bool "same trace for same seed" true
    (Trace_io.to_string w1 = Trace_io.to_string w2);
  let w3 = Alibaba.generate { small_params with Alibaba.seed = 12 } in
  check bool "seed changes trace" true
    (Trace_io.to_string w1 <> Trace_io.to_string w3)

let test_generator_statistics () =
  let w = Alibaba.generate small_params in
  let s = Workload_stats.compute w in
  check int "exact container budget" small_params.Alibaba.target_containers
    s.Workload_stats.n_containers;
  check int "app count" small_params.Alibaba.n_apps s.Workload_stats.n_apps;
  let pct n = 100 * n / s.Workload_stats.n_apps in
  check bool "singles near 64%" true
    (abs (pct s.Workload_stats.n_single_instance - 64) <= 8);
  check bool "anti-affinity near 72%" true
    (abs (pct s.Workload_stats.n_anti_affinity - 72) <= 10);
  check bool "priority near 16%" true
    (abs (pct s.Workload_stats.n_priority - 16) <= 10)

let test_generator_load_band () =
  (* The calibration pass must land cluster load in ~[0.80, 0.90] at the
     paper's 10-containers-per-machine ratio. *)
  List.iter
    (fun f ->
      let w = Alibaba.generate { (Alibaba.scaled f) with Alibaba.seed = 3 } in
      let total = (Resource.to_array (Workload.total_demand w)).(0) in
      let machines = Workload.n_containers w / 10 in
      let cap = (Resource.to_array w.Workload.machine_capacity).(0) * machines in
      let load = float_of_int total /. float_of_int cap in
      check bool (Printf.sprintf "load at scale %.2f in band (%.2f)" f load)
        true
        (load > 0.78 && load < 0.92))
    [ 0.02; 0.1 ]

let test_generator_demand_cap () =
  let w = Alibaba.generate small_params in
  Array.iter
    (fun (a : Application.t) ->
      check bool "demand <= 16 cpu" true (Resource.cpu a.Application.demand <= 16.))
    w.Workload.apps

let test_generator_container_arrivals () =
  let w = Alibaba.generate small_params in
  Array.iteri
    (fun i (c : Container.t) -> check int "arrival = index" i c.Container.arrival)
    w.Workload.containers

(* ---------- workload ---------- *)

let mini_workload () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 1.)
        ~priority:2 ~anti_affinity_within:true ();
      Application.make ~id:1 ~n_containers:3 ~demand:(Resource.cpu_only 2.)
        ~anti_affinity_across:[ 0 ] ();
      Application.make ~id:2 ~n_containers:1 ~demand:(Resource.cpu_only 4.) ();
    |]
  in
  let containers =
    Array.of_list
      (List.concat_map
         (fun (a : Application.t) ->
           Application.containers a
             ~first_id:(10 * a.Application.id)
             ~first_arrival:0)
         (Array.to_list apps))
  in
  Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 32.)

let test_workload_degrees () =
  let w = mini_workload () in
  (* app 0: within (2-1) + across app1 (3) = 4; app 1: across app0 (2) = 2;
     app 2: 0 *)
  check int "degree app 0" 4 (Workload.anti_affinity_degree w 0);
  check int "degree app 1" 2 (Workload.anti_affinity_degree w 1);
  check int "degree app 2" 0 (Workload.anti_affinity_degree w 2);
  let all = Workload.anti_affinity_degrees w in
  check int "bulk matches" 4 (Hashtbl.find all 0)

let test_workload_total_demand () =
  let w = mini_workload () in
  check int "total cpu millis" 12_000
    (Resource.to_array (Workload.total_demand w)).(0)

let test_workload_validation () =
  let apps =
    [| Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 1.) () |]
  in
  let orphan =
    [| Container.make ~id:0 ~app:42 ~demand:(Resource.cpu_only 1.) ~priority:0 ~arrival:0 |]
  in
  Alcotest.check_raises "unknown app"
    (Invalid_argument "Workload.make: container references unknown app")
    (fun () ->
      ignore
        (Workload.make ~apps ~containers:orphan
           ~machine_capacity:(Resource.cpu_only 32.)))

(* ---------- arrival orders ---------- *)

let test_arrival_priority_orders () =
  let w = mini_workload () in
  let chp = (Arrival.apply Arrival.High_priority_first w).Workload.containers in
  let clp = (Arrival.apply Arrival.Low_priority_first w).Workload.containers in
  let priorities a =
    Array.to_list (Array.map (fun (c : Container.t) -> c.Container.priority) a)
  in
  check bool "CHP descending" true
    (priorities chp = List.sort (fun a b -> Int.compare b a) (priorities chp));
  check bool "CLP ascending" true
    (priorities clp = List.sort Int.compare (priorities clp))

let test_arrival_degree_orders () =
  let w = mini_workload () in
  let degrees = Workload.anti_affinity_degrees w in
  let deg (c : Container.t) = Hashtbl.find degrees c.Container.app in
  let cla = (Arrival.apply Arrival.Large_anti_affinity_first w).Workload.containers in
  let csa = (Arrival.apply Arrival.Small_anti_affinity_first w).Workload.containers in
  let ds a = Array.to_list (Array.map deg a) in
  check bool "CLA descending" true
    (ds cla = List.sort (fun a b -> Int.compare b a) (ds cla));
  check bool "CSA ascending" true (ds csa = List.sort Int.compare (ds csa))

let test_arrival_stable_and_complete () =
  let w = Alibaba.generate small_params in
  List.iter
    (fun (_, o) ->
      let w' = Arrival.apply o w in
      check int "same containers"
        (Workload.n_containers w)
        (Workload.n_containers w');
      let ids a =
        Array.to_list (Array.map (fun (c : Container.t) -> c.Container.id) a)
        |> List.sort Int.compare
      in
      check bool "same id multiset" true
        (ids w.Workload.containers = ids w'.Workload.containers))
    Arrival.all

let test_arrival_names () =
  check bool "CHP roundtrip" true
    (Arrival.of_string "chp" = Some Arrival.High_priority_first);
  check bool "abbrev" true (Arrival.abbrev Arrival.Small_anti_affinity_first = "CSA");
  check bool "unknown" true (Arrival.of_string "bogus" = None)

(* ---------- io ---------- *)

let test_io_roundtrip () =
  let w = Alibaba.generate small_params in
  let s = Trace_io.to_string w in
  let w' = ok_exn (Trace_io.of_string s) in
  check bool "roundtrip identical" true (Trace_io.to_string w' = s);
  check int "containers preserved" (Workload.n_containers w) (Workload.n_containers w')

let test_io_roundtrip_spaced_names () =
  (* names with whitespace are sanitised at Application.make, so the
     space-separated trace format still round-trips *)
  let apps =
    [|
      Application.make ~id:0 ~name:"web frontend v2" ~n_containers:2
        ~demand:(Resource.cpu_only 1.) ();
      Application.make ~id:1 ~name:"  " ~n_containers:1
        ~demand:(Resource.cpu_only 2.) ();
    |]
  in
  check bool "spaces replaced" true
    (apps.(0).Application.name = "web_frontend_v2");
  check bool "blank name falls back to id" true
    (apps.(1).Application.name = "app-1");
  let containers =
    Array.of_list
      (List.concat_map
         (fun (a : Application.t) ->
           Application.containers a ~first_id:(10 * a.Application.id)
             ~first_arrival:0)
         (Array.to_list apps))
  in
  let w =
    Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 32.)
  in
  let s = Trace_io.to_string w in
  let w' = ok_exn (Trace_io.of_string s) in
  check bool "roundtrip identical" true (Trace_io.to_string w' = s);
  check bool "name survives" true
    (w'.Workload.apps.(0).Application.name = "web_frontend_v2")

let test_io_file_roundtrip () =
  let w = mini_workload () in
  let path = Filename.temp_file "aladdin" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.save w path;
      let w' = ok_exn (Trace_io.load path) in
      check bool "file roundtrip" true (Trace_io.to_string w = Trace_io.to_string w'))

let test_io_rejects_garbage () =
  let e = err_exn (Trace_io.of_string "nope") in
  check int "header error on line 1" 1 e.Trace_error.line;
  check Alcotest.string "header field" "header" e.Trace_error.field

let test_io_error_positions () =
  let w = mini_workload () in
  let lines = String.split_on_char '\n' (Trace_io.to_string w) in
  (* mangle the first machine line: drop a field *)
  let mangled =
    List.mapi
      (fun i l ->
        if i = 1 then
          match String.rindex_opt l ' ' with
          | Some j -> String.sub l 0 j
          | None -> l
        else l)
      lines
  in
  let e = err_exn (Trace_io.of_string (String.concat "\n" mangled)) in
  check int "error names the mangled line" 2 e.Trace_error.line;
  check bool "field recorded" true (e.Trace_error.field <> "");
  (* a non-numeric field deeper in the trace *)
  let mangled2 =
    List.mapi (fun i l -> if i = 3 then l ^ " not-an-int" else l) lines
  in
  match Trace_io.of_string (String.concat "\n" mangled2) with
  | Ok _ -> () (* extra token may land in an ignored position *)
  | Error e -> check int "line number is 1-based" 4 e.Trace_error.line

(* ---------- stats / cdf ---------- *)

let test_stats_cdf () =
  let w = mini_workload () in
  let cdf = Workload_stats.cdf w ~at:[ 1; 2; 3 ] in
  check bool "cdf at 1" true (List.assoc 1 cdf = 1. /. 3.);
  check bool "cdf at 3" true (List.assoc 3 cdf = 1.);
  let s = Workload_stats.compute w in
  check int "singles" 1 s.Workload_stats.n_single_instance;
  check int "max app" 3 s.Workload_stats.max_app_size

(* ---------- public Alibaba CSV schema ---------- *)

let sample_csv =
  "container_id,machine_id,time_stamp,app_du,status,cpu_request,cpu_limit,mem_size\n\
   c1,m1,0,app_A,started,400,800,50\n\
   c2,m2,0,app_A,started,400,800,50\n\
   c3,m3,0,app_B,started,800,800,25\n\
   c4,m4,0,app_B,terminated,800,800,25\n\
   c5,m5,0,app_C,allocated,100,200,10\n"

let test_csv_parses () =
  let w = ok_exn (Alibaba_csv.of_string sample_csv) in
  check int "apps" 3 (Workload.n_apps w);
  (* the terminated row is skipped *)
  check int "containers" 4 (Workload.n_containers w);
  let cs = Workload.constraint_set w in
  let by_name name =
    Array.to_list w.Workload.apps
    |> List.find (fun (a : Application.t) -> a.Application.name = name)
  in
  let a = by_name "app_A" and b = by_name "app_B" in
  check (Alcotest.float 1e-9) "centi-core cpu" 4. (Resource.cpu a.Application.demand);
  check int "app_A size" 2 a.Application.n_containers;
  check bool "multi app gets anti-within" true
    (Constraint_set.anti_within cs a.Application.id);
  check int "app_B size (terminated dropped)" 1 b.Application.n_containers;
  check bool "single app no anti-within" false
    (Constraint_set.anti_within cs b.Application.id)

let test_csv_priority_centile () =
  let w =
    ok_exn
      (Alibaba_csv.of_string
         ~options:{ Alibaba_csv.default_options with priority_centile = 0.34 }
         sample_csv)
  in
  (* top 34% of 3 apps = 1 app; app_A has the largest total cpu (800) and
     ties with app_B — one of them is priority *)
  let n_prio =
    Array.to_list w.Workload.apps
    |> List.filter (fun (a : Application.t) -> a.Application.priority > 0)
    |> List.length
  in
  check int "one priority app" 1 n_prio

let test_csv_multidim () =
  let w =
    ok_exn
      (Alibaba_csv.of_string
         ~options:{ Alibaba_csv.default_options with cpu_only = false }
         sample_csv)
  in
  check int "two dims" 2 (Resource.dims w.Workload.machine_capacity);
  let a =
    Array.to_list w.Workload.apps
    |> List.find (fun (a : Application.t) -> a.Application.name = "app_A")
  in
  (* mem 50/100 of 64 GB = 32 GB *)
  check (Alcotest.float 1e-6) "mem scaling" 32. (Resource.mem_gb a.Application.demand)

let test_csv_rejects_garbage () =
  let e = err_exn (Alibaba_csv.of_string "") in
  check Alcotest.string "empty input field" "rows" e.Trace_error.field;
  let e = err_exn (Alibaba_csv.of_string "just,three,columns") in
  check int "bad row line" 1 e.Trace_error.line;
  check Alcotest.string "bad row field" "row" e.Trace_error.field;
  let bad_cpu =
    "container_id,machine_id,time_stamp,app_du,status,cpu_request,cpu_limit,mem_size\n\
     c1,m1,0,app_A,started,banana,800,50\n"
  in
  let e = err_exn (Alibaba_csv.of_string bad_cpu) in
  check int "bad cpu line" 2 e.Trace_error.line;
  check Alcotest.string "bad cpu field" "cpu_request" e.Trace_error.field

let test_csv_replayable () =
  let w = ok_exn (Alibaba_csv.of_string sample_csv) in
  let sched = Aladdin.Aladdin_scheduler.make () in
  let r = Replay.run_workload sched w ~n_machines:4 in
  check int "all placed" 4 (List.length r.Replay.outcome.Scheduler.placed)

(* ---------- histogram ---------- *)

let test_histogram_basics () =
  let h = Histogram.of_list [ 5.; 1.; 3.; 2.; 4. ] in
  check int "count" 5 (Histogram.count h);
  check (Alcotest.float 1e-9) "min" 1. (Histogram.min_value h);
  check (Alcotest.float 1e-9) "max" 5. (Histogram.max_value h);
  check (Alcotest.float 1e-9) "mean" 3. (Histogram.mean h);
  check (Alcotest.float 1e-9) "median" 3. (Histogram.percentile h 0.5);
  check (Alcotest.float 1e-9) "p0" 1. (Histogram.percentile h 0.);
  check (Alcotest.float 1e-9) "p100" 5. (Histogram.percentile h 1.);
  check (Alcotest.float 1e-6) "stddev" (sqrt 2.) (Histogram.stddev h)

let test_histogram_interleaved_adds () =
  let h = Histogram.create () in
  Histogram.add h 10.;
  check (Alcotest.float 1e-9) "after one" 10. (Histogram.percentile h 0.5);
  Histogram.add h 0.;
  (* adding after a sorted query must keep results correct *)
  check (Alcotest.float 1e-9) "min updated" 0. (Histogram.min_value h)

let test_histogram_buckets () =
  let h = Histogram.of_list [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 10. ] in
  let bs = Histogram.buckets h ~n:2 in
  check int "two buckets" 2 (List.length bs);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 bs in
  check int "all counted" 10 total

let test_histogram_errors () =
  let h = Histogram.create () in
  Alcotest.check_raises "empty mean" (Invalid_argument "Histogram.mean: empty")
    (fun () -> ignore (Histogram.mean h));
  Histogram.add h 1.;
  Alcotest.check_raises "bad p"
    (Invalid_argument "Histogram.percentile: p outside [0,1]") (fun () ->
      ignore (Histogram.percentile h 2.))

let () =
  Alcotest.run "trace"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_int;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
          Alcotest.test_case "shuffle" `Quick test_shuffle_permutes;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "statistics" `Quick test_generator_statistics;
          Alcotest.test_case "load band" `Quick test_generator_load_band;
          Alcotest.test_case "demand cap" `Quick test_generator_demand_cap;
          Alcotest.test_case "arrival normalisation" `Quick
            test_generator_container_arrivals;
        ] );
      ( "workload",
        [
          Alcotest.test_case "degrees" `Quick test_workload_degrees;
          Alcotest.test_case "total demand" `Quick test_workload_total_demand;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "arrival",
        [
          Alcotest.test_case "priority orders" `Quick test_arrival_priority_orders;
          Alcotest.test_case "degree orders" `Quick test_arrival_degree_orders;
          Alcotest.test_case "stable & complete" `Quick
            test_arrival_stable_and_complete;
          Alcotest.test_case "names" `Quick test_arrival_names;
        ] );
      ( "io",
        [
          Alcotest.test_case "string roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "spaced names roundtrip" `Quick
            test_io_roundtrip_spaced_names;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "error positions" `Quick test_io_error_positions;
        ] );
      ("stats", [ Alcotest.test_case "cdf" `Quick test_stats_cdf ]);
      ( "alibaba-csv",
        [
          Alcotest.test_case "parses" `Quick test_csv_parses;
          Alcotest.test_case "priority centile" `Quick test_csv_priority_centile;
          Alcotest.test_case "multidimensional" `Quick test_csv_multidim;
          Alcotest.test_case "rejects garbage" `Quick test_csv_rejects_garbage;
          Alcotest.test_case "replayable" `Quick test_csv_replayable;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "interleaved adds" `Quick
            test_histogram_interleaved_adds;
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "errors" `Quick test_histogram_errors;
        ] );
    ]
