(* Tests for the baseline schedulers: Firmament, Medea, Go-Kube, and the
   undeployed-cause classifier. Includes the paper's Figure 1 scenario. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk ?(id = 0) ?(app = 0) ?(priority = 0) ?(arrival = 0) cpu =
  Container.make ~id ~app ~demand:(Resource.cpu_only cpu) ~priority ~arrival

let cluster_of apps ~n_machines ~machine_cpu =
  let topo =
    Topology.homogeneous ~machines_per_rack:2 ~racks_per_group:2 ~n_machines
      ~capacity:(Resource.cpu_only machine_cpu) ()
  in
  Cluster.create topo ~constraints:(Constraint_set.of_apps apps)

(* ---------- cost models ---------- *)

let test_cost_model_names () =
  check bool "trivial" true (Cost_model.of_string "trivial" = Some Cost_model.Trivial);
  check bool "quincy" true (Cost_model.of_string "QUINCY" = Some Cost_model.Quincy);
  check bool "octopus" true (Cost_model.of_string "Octopus" = Some Cost_model.Octopus);
  check bool "unknown" true (Cost_model.of_string "nope" = None)

let test_cost_model_preferences () =
  let cap = Resource.cpu_only 32. in
  let empty = Machine.create ~id:0 ~rack:0 ~group:0 ~capacity:cap in
  let packed = Machine.create ~id:1 ~rack:0 ~group:0 ~capacity:cap in
  Machine.place packed (mk ~id:0 16.);
  check bool "trivial packs" true
    (Cost_model.machine_cost Cost_model.Trivial packed
    < Cost_model.machine_cost Cost_model.Trivial empty);
  check bool "octopus balances" true
    (Cost_model.machine_cost Cost_model.Octopus empty
    < Cost_model.machine_cost Cost_model.Octopus packed);
  check bool "unscheduled dominates" true
    (Cost_model.unscheduled_cost > Cost_model.machine_cost Cost_model.Quincy empty)

(* ---------- firmament ---------- *)

let simple_apps () =
  [|
    Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 4.) ();
    Application.make ~id:1 ~n_containers:2 ~demand:(Resource.cpu_only 4.)
      ~anti_affinity_within:true ();
  |]

let test_firmament_slot_size () =
  check int "mean of batch" 3000 (Firmament.slot_size_millis [| mk 2.; mk 4. |]);
  check int "empty batch default" 1000 (Firmament.slot_size_millis [||])

let test_firmament_schedules_simple_batch () =
  let cl = cluster_of (simple_apps ()) ~n_machines:4 ~machine_cpu:32. in
  let batch = Array.init 8 (fun i -> mk ~id:i ~app:0 4.) in
  let sched = Firmament.make () in
  let o = sched.Scheduler.schedule cl batch in
  check int "all placed" 8 (List.length o.Scheduler.placed);
  check int "none undeployed" 0 (List.length o.Scheduler.undeployed)

let test_firmament_respects_hard_checks () =
  let cl = cluster_of (simple_apps ()) ~n_machines:2 ~machine_cpu:32. in
  let batch =
    Array.append
      (Array.init 4 (fun i -> mk ~id:i ~app:0 4.))
      (Array.init 2 (fun i -> mk ~id:(10 + i) ~app:1 4.))
  in
  let sched = Firmament.make () in
  let o = sched.Scheduler.schedule cl batch in
  ignore o;
  check int "no violating placements" 0
    (List.length (Cluster.current_violations cl))

let test_firmament_reschd_helps () =
  let params = { (Alibaba.scaled 0.01) with Alibaba.seed = 5 } in
  let w = Alibaba.generate params in
  let machines = max 4 (Workload.n_containers w / 10) in
  let undeployed i =
    let sched = Firmament.make ~config:{ Firmament.default with reschd = i } () in
    let r = Replay.run_workload sched w ~n_machines:machines in
    List.length r.Replay.outcome.Scheduler.undeployed
  in
  let u1 = undeployed 1 and u8 = undeployed 8 in
  check bool "reschd(8) <= reschd(1)" true (u8 <= u1)

let test_firmament_spreads_anti_within_apps () =
  (* Round-robin extraction must not dump a whole anti-within app on one
     machine: with enough machines and rounds, all siblings deploy. *)
  let apps =
    [|
      Application.make ~id:0 ~n_containers:6 ~demand:(Resource.cpu_only 4.)
        ~anti_affinity_within:true ();
    |]
  in
  let cl = cluster_of apps ~n_machines:8 ~machine_cpu:32. in
  let batch = Array.init 6 (fun i -> mk ~id:i ~app:0 4.) in
  let sched = Firmament.make ~config:{ Firmament.default with reschd = 8 } () in
  let o = sched.Scheduler.schedule cl batch in
  check int "all siblings placed" 6 (List.length o.Scheduler.placed);
  let machines =
    List.filter_map (fun (cid, _) -> Cluster.machine_of cl cid) o.Scheduler.placed
  in
  check int "six distinct machines" 6
    (List.length (List.sort_uniq compare machines))

let test_firmament_cost_scaling_solver () =
  (* both exact solvers must produce a working schedule; quality is within
     noise of each other on the same workload *)
  let params = { (Alibaba.scaled 0.01) with Alibaba.seed = 3 } in
  let w = Alibaba.generate params in
  let machines = max 4 (Workload.n_containers w / 10) in
  let undeployed solver =
    let sched = Firmament.make ~config:{ Firmament.default with solver } () in
    let r = Replay.run_workload sched w ~n_machines:machines in
    List.length r.Replay.outcome.Scheduler.undeployed
  in
  let ssp = undeployed "mincost" in
  let cs = undeployed "cost-scaling" in
  check bool "both solvers schedule comparably" true (abs (ssp - cs) <= 20)

let test_firmament_name () =
  check bool "name" true
    (Firmament.name { Firmament.default with reschd = 2 } = "Firmament-QUINCY(2)")

(* ---------- medea ---------- *)

let test_medea_exact_small_instance () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 8.)
        ~anti_affinity_within:true ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 8.) ();
    |]
  in
  let cl = cluster_of apps ~n_machines:2 ~machine_cpu:32. in
  let batch = [| mk ~id:0 ~app:0 8.; mk ~id:1 ~app:0 8.; mk ~id:2 ~app:1 8. |] in
  let sched = Medea.make () in
  let o = sched.Scheduler.schedule cl batch in
  check int "all placed" 3 (List.length o.Scheduler.placed);
  check int "no violations with c=0" 0 (List.length (Cluster.current_violations cl));
  let m0 = Cluster.machine_of cl 0 and m1 = Cluster.machine_of cl 1 in
  check bool "siblings apart" true (m0 <> m1)

let test_medea_zero_c_never_violates () =
  let params = { (Alibaba.scaled 0.01) with Alibaba.seed = 9 } in
  let w = Alibaba.generate params in
  let machines = max 4 (Workload.n_containers w / 10) in
  let sched = Medea.make () in
  let r = Replay.run_workload sched w ~n_machines:machines in
  check int "no violating placements" 0
    (List.length (Cluster.current_violations r.Replay.cluster))

let test_medea_tolerance_allows_violations () =
  (* Figure 1 scenario: one S0 (anti to S1), two S1, one machine. With
     c = 0 Medea leaves S0 out; with c > 0 it co-locates and violates
     (paper Fig. 1(c)). *)
  let apps =
    [|
      Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 8.)
        ~anti_affinity_across:[ 1 ] ();
      Application.make ~id:1 ~n_containers:2 ~demand:(Resource.cpu_only 8.)
        ~priority:1 ();
    |]
  in
  let batch =
    [|
      mk ~id:0 ~app:0 8.;
      mk ~id:1 ~app:1 ~priority:1 8.;
      mk ~id:2 ~app:1 ~priority:1 8.;
    |]
  in
  let strict = cluster_of apps ~n_machines:1 ~machine_cpu:32. in
  let o_strict = (Medea.make ()).Scheduler.schedule strict batch in
  check int "strict: S0 undeployed" 1 (List.length o_strict.Scheduler.undeployed);
  check int "strict: no violating placement" 0
    (List.length (Cluster.current_violations strict));
  let tolerant = cluster_of apps ~n_machines:1 ~machine_cpu:32. in
  let o_tol =
    (Medea.make
       ~config:{ Medea.default with weights = { Medea.a = 1.; b = 1.; c = 1. } }
       ())
      .Scheduler.schedule tolerant batch
  in
  check int "tolerant: everything placed" 3 (List.length o_tol.Scheduler.placed);
  check bool "tolerant: violation recorded" true
    (List.length (Cluster.current_violations tolerant) > 0)

let test_medea_defragments () =
  (* Seed a deliberately spread placement, then let Medea's heuristic path
     (batch too big for the exact ILP) defragment: lightly-used machines
     should empty out. *)
  let apps =
    [|
      Application.make ~id:0 ~n_containers:64 ~demand:(Resource.cpu_only 2.) ();
    |]
  in
  let cl = cluster_of apps ~n_machines:16 ~machine_cpu:32. in
  (* one 2-cpu container on each of 12 machines: 12 used, all light *)
  for i = 0 to 11 do
    ignore (Cluster.place cl (mk ~id:i ~app:0 2.) i)
  done;
  check int "spread before" 12 (Cluster.used_machines cl);
  (* an empty batch still triggers the defragmentation pass *)
  let sched =
    Medea.make ~config:{ Medea.default with exact_max_cells = 0 } ()
  in
  let batch = Array.init 4 (fun i -> mk ~id:(100 + i) ~app:0 2.) in
  let o = sched.Scheduler.schedule cl batch in
  check int "batch placed" 4 (List.length o.Scheduler.placed);
  check bool "fewer machines after defrag" true (Cluster.used_machines cl < 12)

let test_medea_name () =
  check bool "name" true (Medea.name Medea.default = "MEDEA(1,1,0)");
  check bool "fractional" true
    (Medea.name { Medea.default with weights = { Medea.a = 1.; b = 0.5; c = 0.5 } }
    = "MEDEA(1,0.5,0.5)")

(* ---------- gokube ---------- *)

let test_gokube_score_prefers_empty () =
  let cap = Resource.cpu_only 32. in
  let empty = Machine.create ~id:0 ~rack:0 ~group:0 ~capacity:cap in
  let busy = Machine.create ~id:1 ~rack:0 ~group:0 ~capacity:cap in
  Machine.place busy (mk ~id:5 16.);
  let c = mk 4. in
  check bool "spreads" true (Gokube.score empty c > Gokube.score busy c)

let test_gokube_filter_blocks_anti_affinity () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:2 ~demand:(Resource.cpu_only 4.)
        ~anti_affinity_within:true ();
    |]
  in
  let cl = cluster_of apps ~n_machines:1 ~machine_cpu:32. in
  let o =
    (Gokube.make ()).Scheduler.schedule cl
      [| mk ~id:0 ~app:0 4.; mk ~id:1 ~app:0 4. |]
  in
  check int "second sibling undeployed" 1 (List.length o.Scheduler.undeployed);
  check int "no violating placement" 0 (List.length (Cluster.current_violations cl));
  check bool "classified anti-affinity" true
    (List.exists Violation.is_anti_affinity o.Scheduler.violations)

let test_gokube_preempts_for_capacity_only () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:8 ~demand:(Resource.cpu_only 16.) ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 32.)
        ~priority:1 ();
      Application.make ~id:2 ~n_containers:1 ~demand:(Resource.cpu_only 4.)
        ~priority:1 ~anti_affinity_across:[ 0 ] ();
    |]
  in
  let cl = cluster_of apps ~n_machines:1 ~machine_cpu:32. in
  let fill = [| mk ~id:0 ~app:0 16.; mk ~id:1 ~app:0 16. |] in
  ignore ((Gokube.make ()).Scheduler.schedule cl fill);
  let o1 =
    (Gokube.make ()).Scheduler.schedule cl [| mk ~id:10 ~app:1 ~priority:1 32. |]
  in
  check bool "high-priority pod placed via preemption" true
    (List.mem_assoc 10 o1.Scheduler.placed);
  check bool "evictions happened" true (o1.Scheduler.preemptions > 0);
  Cluster.reset cl;
  ignore ((Gokube.make ()).Scheduler.schedule cl fill);
  let o2 =
    (Gokube.make ()).Scheduler.schedule cl [| mk ~id:20 ~app:2 ~priority:1 4. |]
  in
  check int "anti-affinity not preemptable" 1 (List.length o2.Scheduler.undeployed)

let test_gokube_uses_more_machines_than_aladdin () =
  let params = { (Alibaba.scaled 0.01) with Alibaba.seed = 13 } in
  let w = Alibaba.generate params in
  let machines = max 8 (Workload.n_containers w / 8) in
  let used sched =
    let r = Replay.run_workload sched w ~n_machines:machines in
    Cluster.used_machines r.Replay.cluster
  in
  check bool "spreading uses more machines" true
    (used (Gokube.make ()) >= used (Aladdin.Aladdin_scheduler.make ()))

(* ---------- classifier ---------- *)

let test_classifier () =
  let apps =
    [|
      Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 8.)
        ~anti_affinity_across:[ 1 ] ();
      Application.make ~id:1 ~n_containers:1 ~demand:(Resource.cpu_only 4.) ();
      Application.make ~id:2 ~n_containers:4 ~demand:(Resource.cpu_only 16.)
        ~priority:0 ();
    |]
  in
  let cl = cluster_of apps ~n_machines:1 ~machine_cpu:32. in
  ignore (Cluster.place cl (mk ~id:0 ~app:1 4.) 0);
  (match Classify.undeployed_violation cl (mk ~id:1 ~app:0 8.) with
  | Some v -> check bool "anti" true (Violation.is_anti_affinity v)
  | None -> Alcotest.fail "violation expected");
  ignore (Cluster.place cl (mk ~id:2 ~app:2 16.) 0);
  (match Classify.undeployed_violation cl (mk ~id:3 ~app:1 ~priority:2 20.) with
  | Some v -> check bool "priority" true (Violation.is_priority v)
  | None -> Alcotest.fail "violation expected");
  check bool "no violation for pure capacity" true
    (Classify.undeployed_violation cl (mk ~id:4 ~app:1 40.) = None)

let () =
  Alcotest.run "baselines"
    [
      ( "cost-model",
        [
          Alcotest.test_case "names" `Quick test_cost_model_names;
          Alcotest.test_case "preferences" `Quick test_cost_model_preferences;
        ] );
      ( "firmament",
        [
          Alcotest.test_case "slot size" `Quick test_firmament_slot_size;
          Alcotest.test_case "simple batch" `Quick
            test_firmament_schedules_simple_batch;
          Alcotest.test_case "hard checks" `Quick test_firmament_respects_hard_checks;
          Alcotest.test_case "reschd helps" `Quick test_firmament_reschd_helps;
          Alcotest.test_case "spreads anti-within apps" `Quick
            test_firmament_spreads_anti_within_apps;
          Alcotest.test_case "cost-scaling solver" `Quick
            test_firmament_cost_scaling_solver;
          Alcotest.test_case "name" `Quick test_firmament_name;
        ] );
      ( "medea",
        [
          Alcotest.test_case "exact ILP path" `Quick test_medea_exact_small_instance;
          Alcotest.test_case "c=0 never violates" `Quick
            test_medea_zero_c_never_violates;
          Alcotest.test_case "Figure 1 tolerance" `Quick
            test_medea_tolerance_allows_violations;
          Alcotest.test_case "defragmentation" `Quick test_medea_defragments;
          Alcotest.test_case "name" `Quick test_medea_name;
        ] );
      ( "gokube",
        [
          Alcotest.test_case "score spreads" `Quick test_gokube_score_prefers_empty;
          Alcotest.test_case "anti-affinity filter" `Quick
            test_gokube_filter_blocks_anti_affinity;
          Alcotest.test_case "preemption capacity-only" `Quick
            test_gokube_preempts_for_capacity_only;
          Alcotest.test_case "spreads across machines" `Quick
            test_gokube_uses_more_machines_than_aladdin;
        ] );
      ("classify", [ Alcotest.test_case "causes" `Quick test_classifier ]);
    ]
