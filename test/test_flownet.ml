(* Tests for the flow-network substrate: graph arena, shortest paths,
   max-flow (Edmonds-Karp and Dinic), min-cost flow, multidim capacities. *)

module G = Flownet.Graph
module Path = Flownet.Path

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Unwrap the solvers' Result APIs where a test expects success. *)
let spfa_exn ?admit g ~src =
  match Flownet.Spfa.run ?admit g ~src with
  | Ok r -> r
  | Error e -> Alcotest.failf "spfa error: %s" (Flownet.Error.to_string e)

let sp_exn ?admit g ~src ~dst =
  match Flownet.Spfa.shortest_path ?admit g ~src ~dst with
  | Ok p -> p
  | Error e -> Alcotest.failf "spfa error: %s" (Flownet.Error.to_string e)

let mincost_exn ?warm ?max_flow g ~src ~dst =
  match Flownet.Mincost.run ?warm ?max_flow g ~src ~dst with
  | Ok s -> s
  | Error e -> Alcotest.failf "mincost error: %s" (Flownet.Error.to_string e)

(* ---------- graph arena ---------- *)

let test_graph_basics () =
  let g = G.create 4 in
  let a = G.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:2 in
  let b = G.add_arc g ~src:1 ~dst:2 ~cap:3 ~cost:(-1) in
  check int "vertices" 4 (G.n_vertices g);
  check int "arcs incl twins" 4 (G.n_arcs g);
  check int "src" 0 (G.src g a);
  check int "dst" 1 (G.dst g a);
  check int "cap" 5 (G.capacity g a);
  check int "cost" 2 (G.cost g a);
  check int "twin id" (a + 1) (G.rev a);
  check int "twin cap" 0 (G.capacity g (G.rev a));
  check int "twin cost" (-2) (G.cost g (G.rev a));
  check bool "forward" true (G.is_forward a);
  check bool "twin not forward" false (G.is_forward (G.rev a));
  check int "residual" 5 (G.residual g a);
  G.push g a 3;
  check int "flow after push" 3 (G.flow g a);
  check int "residual after push" 2 (G.residual g a);
  check int "twin residual grows" 3 (G.residual g (G.rev a));
  check int "outflow" 3 (G.outflow g 0);
  ignore b

let test_graph_push_over () =
  let g = G.create 2 in
  let a = G.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0 in
  Alcotest.check_raises "push over capacity"
    (Invalid_argument "Graph.push: exceeds residual capacity") (fun () ->
      G.push g a 2)

let test_graph_bad_args () =
  let g = G.create 2 in
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Graph.add_arc: negative capacity") (fun () ->
      ignore (G.add_arc g ~src:0 ~dst:1 ~cap:(-1) ~cost:0));
  Alcotest.check_raises "bad vertex"
    (Invalid_argument "Graph.add_arc: vertex out of range") (fun () ->
      ignore (G.add_arc g ~src:0 ~dst:5 ~cap:1 ~cost:0))

let test_graph_grows () =
  let g = G.create ~arc_hint:1 3 in
  for _ = 1 to 100 do
    ignore (G.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0)
  done;
  check int "200 arcs stored" 200 (G.n_arcs g);
  check int "out degree includes twins" 100 (G.out_degree g 0)

let test_reset_flows () =
  let g = G.create 2 in
  let a = G.add_arc g ~src:0 ~dst:1 ~cap:4 ~cost:0 in
  G.push g a 4;
  G.reset_flows g;
  check int "flow reset" 0 (G.flow g a);
  check int "residual restored" 4 (G.residual g a)

let contains ~sub s =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

(* The CSR view must be invalidated by topology changes (add_arc, truncate)
   and survive flow pushes. Regression test for the freeze lifecycle. *)
let test_freeze_lifecycle () =
  let g = G.create 3 in
  let a = G.add_arc g ~src:0 ~dst:1 ~cap:4 ~cost:0 in
  check bool "new graph not frozen" false (G.frozen g);
  Alcotest.check_raises "first_out before freeze"
    (Invalid_argument "Graph.first_out: graph not frozen") (fun () ->
      ignore (G.first_out g));
  G.freeze g;
  check bool "frozen after freeze" true (G.frozen g);
  let first = G.first_out g and arcs = G.arc_of g in
  check int "offsets length" (G.n_vertices g + 1) (Flownet.Ia.length first);
  check int "vertex 0 out-degree" 1 (first.{1} - first.{0});
  check int "vertex 0 first arc" a arcs.{first.{0}};
  (* flow updates keep the view valid *)
  G.push g a 2;
  check bool "push keeps frozen" true (G.frozen g);
  (* topology changes invalidate it *)
  let m = G.mark g in
  ignore (G.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:0);
  check bool "add_arc dirties" false (G.frozen g);
  G.freeze g;
  check bool "refrozen" true (G.frozen g);
  G.truncate g m;
  check bool "truncate dirties" false (G.frozen g);
  Alcotest.check_raises "arc_of after truncate"
    (Invalid_argument "Graph.arc_of: graph not frozen") (fun () ->
      ignore (G.arc_of g));
  G.freeze g;
  check int "view rebuilt to truncated arena" 2
    (G.first_out g).{G.n_vertices g}

let test_pp_frozen_tag () =
  let g = G.create 2 in
  ignore (G.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0);
  let dump () = Format.asprintf "%a" G.pp g in
  check bool "dirty before freeze" true (contains ~sub:"(dirty)" (dump ()));
  G.freeze g;
  check bool "frozen after freeze" true (contains ~sub:"(frozen)" (dump ()))

(* ---------- heap ---------- *)

let test_heap_sorts () =
  let h = Flownet.Heap.create () in
  let xs = [ 5; 1; 9; 3; 7; 2; 8; 0; 4; 6 ] in
  List.iter (fun k -> Flownet.Heap.push h ~key:k ~value:(10 * k)) xs;
  let out = ref [] in
  let rec drain () =
    match Flownet.Heap.pop_min h with
    | Some (k, v) ->
        check int "value matches key" (10 * k) v;
        out := k :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

(* ---------- shortest paths ---------- *)

(* Diamond with a negative shortcut: 0→1 (1), 0→2 (4), 1→2 (-2), 2→3 (1). *)
let diamond () =
  let g = G.create 4 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:10 ~cost:1 in
  let _ = G.add_arc g ~src:0 ~dst:2 ~cap:10 ~cost:4 in
  let _ = G.add_arc g ~src:1 ~dst:2 ~cap:10 ~cost:(-2) in
  let _ = G.add_arc g ~src:2 ~dst:3 ~cap:10 ~cost:1 in
  g

let test_spfa_negative_costs () =
  let g = diamond () in
  let r = spfa_exn g ~src:0 in
  check int "dist to 3 via negative arc" 0 r.Flownet.Spfa.dist.{3};
  check int "dist to 2" (-1) r.Flownet.Spfa.dist.{2}

let test_spfa_matches_bellman_ford () =
  let g = diamond () in
  let s = spfa_exn g ~src:0 in
  let b = Flownet.Bellman_ford.run g ~src:0 in
  check bool "no negative cycle" false b.Flownet.Bellman_ford.negative_cycle;
  Alcotest.(check (array int)) "distances agree"
    (Flownet.Ia.to_array b.Flownet.Bellman_ford.dist)
    (Flownet.Ia.to_array s.Flownet.Spfa.dist)

let test_spfa_admit_filter () =
  let g = diamond () in
  (* Forbid the negative shortcut (arc id 4 = third add_arc's forward). *)
  let p = sp_exn ~admit:(fun a -> a <> 4) g ~src:0 ~dst:3 in
  match p with
  | None -> Alcotest.fail "path expected"
  | Some p -> check int "cost without shortcut" 5 (Path.cost g p)

let test_spfa_unreachable () =
  let g = G.create 3 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:0 in
  let r = spfa_exn g ~src:0 in
  check int "unreachable is max_int" max_int r.Flownet.Spfa.dist.{2};
  check bool "no path" true (sp_exn g ~src:0 ~dst:2 = None)

let test_spfa_negative_cycle () =
  let g = G.create 3 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:1 in
  let _ = G.add_arc g ~src:1 ~dst:2 ~cap:5 ~cost:(-3) in
  let _ = G.add_arc g ~src:2 ~dst:1 ~cap:5 ~cost:1 in
  match Flownet.Spfa.run g ~src:0 with
  | Ok _ -> Alcotest.fail "negative cycle not reported"
  | Error (Flownet.Error.Negative_cycle arcs) ->
      check bool "cycle reconstructed" true (arcs <> []);
      let total = List.fold_left (fun acc a -> acc + G.cost g a) 0 arcs in
      check bool "cycle cost is negative" true (total < 0);
      (* consecutive arcs chain head-to-tail and the walk closes *)
      let rec chained = function
        | x :: (y :: _ as rest) -> G.dst g x = G.src g y && chained rest
        | [ last ] -> G.dst g last = G.src g (List.hd arcs)
        | [] -> true
      in
      check bool "arcs close a cycle" true (chained arcs)
  | Error e -> Alcotest.failf "unexpected error: %s" (Flownet.Error.to_string e)

(* Regression: near-max_int costs used to wrap around in the dist + cost
   relaxations, producing negative labels (or phantom negative cycles).
   With saturating adds the label clamps at the unreachable sentinel. *)
let test_near_max_int_costs_saturate () =
  let big = max_int - 10 in
  let g = G.create 3 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:1 ~cost:big in
  let _ = G.add_arc g ~src:1 ~dst:2 ~cap:1 ~cost:big in
  let r = spfa_exn g ~src:0 in
  check int "one hop is exact" big r.Flownet.Spfa.dist.{1};
  check int "two hops saturate at max_int" max_int r.Flownet.Spfa.dist.{2};
  let b = Flownet.Bellman_ford.run g ~src:0 in
  check bool "no phantom negative cycle" false
    b.Flownet.Bellman_ford.negative_cycle;
  Alcotest.(check (array int)) "bellman-ford agrees"
    (Flownet.Ia.to_array r.Flownet.Spfa.dist)
    (Flownet.Ia.to_array b.Flownet.Bellman_ford.dist);
  (* the min-cost solver must survive the same graph (dst label saturates
     to "unreachable", so it pushes nothing rather than crash or loop) *)
  let s = mincost_exn g ~src:0 ~dst:2 in
  check int "no flow pushed" 0 s.Flownet.Mincost.flow

let test_dijkstra_rejects_negative () =
  let g = diamond () in
  let potential = Flownet.Ia.create 4 in
  Alcotest.check_raises "negative reduced cost"
    (Invalid_argument "Dijkstra.run: negative reduced cost") (fun () ->
      ignore (Flownet.Dijkstra.run g ~src:0 ~potential))

let test_dijkstra_with_potentials () =
  let g = diamond () in
  let s = spfa_exn g ~src:0 in
  let r = Flownet.Dijkstra.run g ~src:0 ~potential:s.Flownet.Spfa.dist in
  (* with exact potentials all reduced distances are 0 on shortest paths *)
  check int "reduced dist 3" 0 r.Flownet.Dijkstra.dist.{3}

(* ---------- max flow ---------- *)

(* CLRS figure: max flow 23. *)
let clrs () =
  let g = G.create 6 in
  let add s d c = ignore (G.add_arc g ~src:s ~dst:d ~cap:c ~cost:0) in
  add 0 1 16; add 0 2 13; add 1 2 10; add 2 1 4; add 1 3 12; add 3 2 9;
  add 2 4 14; add 4 3 7; add 3 5 20; add 4 5 4;
  g

let test_edmonds_karp_clrs () =
  let g = clrs () in
  check int "max flow" 23 (Flownet.Maxflow.run g ~src:0 ~dst:5)

let test_dinic_clrs () =
  let g = clrs () in
  check int "max flow" 23 (Flownet.Dinic.run g ~src:0 ~dst:5)

let test_push_relabel_clrs () =
  let g = clrs () in
  check int "max flow" 23 (Flownet.Push_relabel.run g ~src:0 ~dst:5);
  check int "source outflow" 23 (G.outflow g 0);
  for v = 1 to 4 do
    check int "conservation" 0 (G.outflow g v)
  done

let cut_capacity g reachable =
  let total = ref 0 in
  for a = 0 to G.n_arcs g - 1 do
    if G.is_forward a && reachable.(G.src g a) && not (reachable.(G.dst g a))
    then total := !total + G.capacity g a
  done;
  !total

let test_min_cut_equals_flow () =
  let g = clrs () in
  let f = Flownet.Maxflow.run g ~src:0 ~dst:5 in
  let cut = Flownet.Maxflow.min_cut g ~src:0 in
  check bool "source in cut" true cut.(0);
  check bool "sink not in cut" false cut.(5);
  check int "cut capacity = flow" f (cut_capacity g cut)

let test_flow_conservation_clrs () =
  let g = clrs () in
  let f = Flownet.Maxflow.run g ~src:0 ~dst:5 in
  check int "source outflow" f (G.outflow g 0);
  check int "sink outflow" (-f) (G.outflow g 5);
  for v = 1 to 4 do
    check int "conservation" 0 (G.outflow g v)
  done

let test_disconnected_flow () =
  let g = G.create 4 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:5 ~cost:0 in
  let _ = G.add_arc g ~src:2 ~dst:3 ~cap:5 ~cost:0 in
  check int "no path no flow" 0 (Flownet.Maxflow.run g ~src:0 ~dst:3);
  check int "dinic agrees" 0 (Flownet.Dinic.run g ~src:0 ~dst:3)

(* ---------- min cost flow ---------- *)

let test_mincost_prefers_cheap_path () =
  let g = G.create 4 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:10 ~cost:1 in
  let _ = G.add_arc g ~src:0 ~dst:2 ~cap:10 ~cost:5 in
  let _ = G.add_arc g ~src:1 ~dst:3 ~cap:4 ~cost:1 in
  let _ = G.add_arc g ~src:2 ~dst:3 ~cap:10 ~cost:1 in
  let s = mincost_exn g ~src:0 ~dst:3 in
  check int "full flow" 14 s.Flownet.Mincost.flow;
  (* 4 units at cost 2, 10 units at cost 6 *)
  check int "optimal cost" 68 s.Flownet.Mincost.cost

let test_mincost_max_flow_bound () =
  let g = G.create 4 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:10 ~cost:1 in
  let _ = G.add_arc g ~src:1 ~dst:3 ~cap:10 ~cost:1 in
  let s = mincost_exn ~max_flow:3 g ~src:0 ~dst:3 in
  check int "bounded flow" 3 s.Flownet.Mincost.flow;
  check int "bounded cost" 6 s.Flownet.Mincost.cost

let test_mincost_negative_arc () =
  let g = diamond () in
  let s = mincost_exn ~max_flow:1 g ~src:0 ~dst:3 in
  check int "flow" 1 s.Flownet.Mincost.flow;
  check int "uses negative shortcut" 0 s.Flownet.Mincost.cost

let test_cost_scaling_simple () =
  let g = G.create 4 in
  let _ = G.add_arc g ~src:0 ~dst:1 ~cap:10 ~cost:1 in
  let _ = G.add_arc g ~src:0 ~dst:2 ~cap:10 ~cost:5 in
  let _ = G.add_arc g ~src:1 ~dst:3 ~cap:4 ~cost:1 in
  let _ = G.add_arc g ~src:2 ~dst:3 ~cap:10 ~cost:1 in
  let s = Flownet.Cost_scaling.run g ~src:0 ~dst:3 in
  check int "full flow" 14 s.Flownet.Mincost.flow;
  check int "optimal cost" 68 s.Flownet.Mincost.cost

let test_cost_scaling_negative_arc () =
  let g = diamond () in
  let s = Flownet.Cost_scaling.run g ~src:0 ~dst:3 in
  check int "max flow" 10 s.Flownet.Mincost.flow;
  (* all 10 units via the negative shortcut: cost 0 each *)
  check int "optimal cost" 0 s.Flownet.Mincost.cost

(* ---------- property tests ---------- *)

let random_graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* m = int_range 1 20 in
    let* arcs =
      list_repeat m
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 10))
    in
    return (n, arcs))

let build (n, arcs) =
  let g = G.create n in
  List.iter
    (fun (s, d, c) -> if s <> d then ignore (G.add_arc g ~src:s ~dst:d ~cap:c ~cost:0))
    arcs;
  g

let prop_dinic_equals_edmonds_karp =
  QCheck.Test.make ~count:300 ~name:"dinic = edmonds-karp on random graphs"
    (QCheck.make random_graph_gen) (fun spec ->
      let g1 = build spec and g2 = build spec in
      Flownet.Maxflow.run g1 ~src:0 ~dst:(fst spec - 1)
      = Flownet.Dinic.run g2 ~src:0 ~dst:(fst spec - 1))

let prop_push_relabel_equals_dinic =
  QCheck.Test.make ~count:300 ~name:"push-relabel = dinic on random graphs"
    (QCheck.make random_graph_gen) (fun spec ->
      let g1 = build spec and g2 = build spec in
      Flownet.Push_relabel.run g1 ~src:0 ~dst:(fst spec - 1)
      = Flownet.Dinic.run g2 ~src:0 ~dst:(fst spec - 1))

let prop_push_relabel_conservation =
  QCheck.Test.make ~count:300 ~name:"push-relabel conserves flow"
    (QCheck.make random_graph_gen) (fun spec ->
      let n = fst spec in
      let g = build spec in
      let f = Flownet.Push_relabel.run g ~src:0 ~dst:(n - 1) in
      G.outflow g 0 = f
      && G.outflow g (n - 1) = -f
      && List.for_all
           (fun v -> G.outflow g v = 0)
           (List.init (max 0 (n - 2)) (fun i -> i + 1)))

let prop_flow_conservation =
  QCheck.Test.make ~count:300 ~name:"flow conservation on random graphs"
    (QCheck.make random_graph_gen) (fun spec ->
      let n = fst spec in
      let g = build spec in
      let f = Flownet.Maxflow.run g ~src:0 ~dst:(n - 1) in
      G.outflow g 0 = f
      && G.outflow g (n - 1) = -f
      && List.for_all
           (fun v -> G.outflow g v = 0)
           (List.init (max 0 (n - 2)) (fun i -> i + 1)))

let prop_capacity_respected =
  QCheck.Test.make ~count:300 ~name:"flows within capacities"
    (QCheck.make random_graph_gen) (fun spec ->
      let g = build spec in
      ignore (Flownet.Maxflow.run g ~src:0 ~dst:(fst spec - 1));
      let ok = ref true in
      for a = 0 to G.n_arcs g - 1 do
        if G.is_forward a then begin
          let f = G.flow g a in
          if f < 0 || f > G.capacity g a then ok := false
        end
      done;
      !ok)

let random_cost_graph_gen =
  QCheck.Gen.(
    let* n = int_range 2 7 in
    let* m = int_range 1 16 in
    let* arcs =
      list_repeat m
        (quad (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 8)
           (int_range 0 9))
    in
    return (n, arcs))

let build_cost (n, arcs) =
  let g = G.create n in
  List.iter
    (fun (s, d, c, w) ->
      if s <> d then ignore (G.add_arc g ~src:s ~dst:d ~cap:c ~cost:w))
    arcs;
  g

let prop_cost_scaling_equals_ssp =
  QCheck.Test.make ~count:300
    ~name:"cost scaling = successive shortest paths (flow and cost)"
    (QCheck.make random_cost_graph_gen) (fun spec ->
      let n = fst spec in
      let g1 = build_cost spec and g2 = build_cost spec in
      let a = mincost_exn g1 ~src:0 ~dst:(n - 1) in
      let b = Flownet.Cost_scaling.run g2 ~src:0 ~dst:(n - 1) in
      a.Flownet.Mincost.flow = b.Flownet.Mincost.flow
      && a.Flownet.Mincost.cost = b.Flownet.Mincost.cost)

let prop_cost_scaling_conservation =
  QCheck.Test.make ~count:300 ~name:"cost scaling conserves flow"
    (QCheck.make random_cost_graph_gen) (fun spec ->
      let n = fst spec in
      let g = build_cost spec in
      let s = Flownet.Cost_scaling.run g ~src:0 ~dst:(n - 1) in
      G.outflow g 0 = s.Flownet.Mincost.flow
      && List.for_all
           (fun v -> G.outflow g v = 0)
           (List.init (max 0 (n - 2)) (fun i -> i + 1)))

let prop_mincut_equals_maxflow =
  QCheck.Test.make ~count:300 ~name:"min cut capacity = max flow"
    (QCheck.make random_graph_gen) (fun spec ->
      let g = build spec in
      let f = Flownet.Maxflow.run g ~src:0 ~dst:(fst spec - 1) in
      let cut = Flownet.Maxflow.min_cut g ~src:0 in
      if cut.(fst spec - 1) then f > 0 || cut_capacity g cut >= f
      else cut_capacity g cut = f)

(* ---------- mdim ---------- *)

let test_mdim_ops () =
  let a = [| 3; 4 |] and b = [| 1; 2 |] in
  Alcotest.(check (array int)) "add" [| 4; 6 |] (Flownet.Mdim.add a b);
  Alcotest.(check (array int)) "sub" [| 2; 2 |] (Flownet.Mdim.sub a b);
  check bool "leq" true (Flownet.Mdim.leq b a);
  check bool "not leq" false (Flownet.Mdim.leq a b);
  Alcotest.(check (array int)) "clamped" [| 0; 0 |]
    (Flownet.Mdim.sub_clamped b a);
  Alcotest.check_raises "sub negative"
    (Invalid_argument "Mdim.sub: negative result") (fun () ->
      ignore (Flownet.Mdim.sub b a));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Mdim.add: dimension mismatch") (fun () ->
      ignore (Flownet.Mdim.add a [| 1 |]))

let test_mdim_nonlinear () =
  let cap = Flownet.Mdim.nonlinear [| 10; 10 |] ~admit:(fun s -> s mod 2 = 0) in
  check bool "admitted subject fits" true
    (Flownet.Mdim.fits cap ~subject:2 ~demand:[| 5; 5 |]);
  check bool "rejected subject fails" false
    (Flownet.Mdim.fits cap ~subject:3 ~demand:[| 5; 5 |]);
  check bool "oversized fails" false
    (Flownet.Mdim.fits cap ~subject:2 ~demand:[| 11; 5 |]);
  let cap' = Flownet.Mdim.consume cap [| 4; 4 |] in
  check bool "consumed capacity shrinks" false
    (Flownet.Mdim.fits cap' ~subject:2 ~demand:[| 7; 7 |])

(* ---------- path ---------- *)

let test_path_ops () =
  let g = diamond () in
  match sp_exn g ~src:0 ~dst:3 with
  | None -> Alcotest.fail "path expected"
  | Some p ->
      check int "bottleneck" 10 p.Path.bottleneck;
      Alcotest.(check (list int)) "vertices" [ 0; 1; 2; 3 ] (Path.vertices g p);
      Path.augment g p 10;
      check bool "second search avoids saturated arcs" true
        (match sp_exn g ~src:0 ~dst:3 with Some _ | None -> true)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dinic_equals_edmonds_karp;
      prop_push_relabel_equals_dinic;
      prop_push_relabel_conservation;
      prop_flow_conservation;
      prop_capacity_respected;
      prop_mincut_equals_maxflow;
      prop_cost_scaling_equals_ssp;
      prop_cost_scaling_conservation;
    ]

let () =
  Alcotest.run "flownet"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "push over capacity" `Quick test_graph_push_over;
          Alcotest.test_case "bad args" `Quick test_graph_bad_args;
          Alcotest.test_case "arena grows" `Quick test_graph_grows;
          Alcotest.test_case "reset flows" `Quick test_reset_flows;
          Alcotest.test_case "freeze lifecycle" `Quick test_freeze_lifecycle;
          Alcotest.test_case "pp frozen/dirty tag" `Quick test_pp_frozen_tag;
        ] );
      ("heap", [ Alcotest.test_case "sorts" `Quick test_heap_sorts ]);
      ( "shortest-path",
        [
          Alcotest.test_case "spfa negative costs" `Quick
            test_spfa_negative_costs;
          Alcotest.test_case "spfa = bellman-ford" `Quick
            test_spfa_matches_bellman_ford;
          Alcotest.test_case "admit filter" `Quick test_spfa_admit_filter;
          Alcotest.test_case "unreachable" `Quick test_spfa_unreachable;
          Alcotest.test_case "negative cycle reported" `Quick
            test_spfa_negative_cycle;
          Alcotest.test_case "near-max_int costs saturate" `Quick
            test_near_max_int_costs_saturate;
          Alcotest.test_case "dijkstra rejects negative" `Quick
            test_dijkstra_rejects_negative;
          Alcotest.test_case "dijkstra with potentials" `Quick
            test_dijkstra_with_potentials;
        ] );
      ( "maxflow",
        [
          Alcotest.test_case "edmonds-karp CLRS" `Quick test_edmonds_karp_clrs;
          Alcotest.test_case "dinic CLRS" `Quick test_dinic_clrs;
          Alcotest.test_case "push-relabel CLRS" `Quick test_push_relabel_clrs;
          Alcotest.test_case "min cut = flow" `Quick test_min_cut_equals_flow;
          Alcotest.test_case "conservation" `Quick test_flow_conservation_clrs;
          Alcotest.test_case "disconnected" `Quick test_disconnected_flow;
        ] );
      ( "mincost",
        [
          Alcotest.test_case "prefers cheap path" `Quick
            test_mincost_prefers_cheap_path;
          Alcotest.test_case "max_flow bound" `Quick test_mincost_max_flow_bound;
          Alcotest.test_case "negative arc" `Quick test_mincost_negative_arc;
          Alcotest.test_case "cost-scaling simple" `Quick
            test_cost_scaling_simple;
          Alcotest.test_case "cost-scaling negative arc" `Quick
            test_cost_scaling_negative_arc;
        ] );
      ( "mdim",
        [
          Alcotest.test_case "vector ops" `Quick test_mdim_ops;
          Alcotest.test_case "nonlinear capacity" `Quick test_mdim_nonlinear;
        ] );
      ("path", [ Alcotest.test_case "ops" `Quick test_path_ops ]);
      ("properties", qtests);
    ]
