(* Shared property-based generators and oracles for the test suite.

   Everything is seeded through an explicit [Rng.t], threaded by the
   caller, so a failing case reproduces from its seed alone. Three
   families live here:

   - cluster/workload helpers: fresh clusters sized to a workload, batch
     splitting, placement fingerprints (used by the incremental, cells
     and stress suites);
   - random workload generation: synthetic apps with anti-affinity
     (within and across), priority classes and mixed demands, plus
     seeded random batch sequences;
   - flownet generators and oracles: random digraphs/DAGs, the
     feasibility checker and the Bellman–Ford successive-shortest-path
     oracle (used by the solver differential suites). *)

(* ---------- cluster / workload helpers ---------- *)

let fresh_cluster ?machines_per_rack ?racks_per_group w ~n_machines =
  Cluster.create
    (Workload.topology ?machines_per_rack ?racks_per_group w ~n_machines)
    ~constraints:(Workload.constraint_set w)

(* Machines needed to hold the workload's total CPU demand, plus headroom. *)
let machines_for w ~headroom =
  let total =
    (Resource.to_array (Workload.total_demand w)).(Resource.cpu_dim)
  in
  let per =
    (Resource.to_array w.Workload.machine_capacity).(Resource.cpu_dim)
  in
  max 4 (int_of_float (ceil (headroom *. float_of_int total /. float_of_int per)))

(* Split a container array into ~n_batches equal contiguous waves. *)
let waves containers ~n_batches =
  let n = Array.length containers in
  let per = max 1 ((n + n_batches - 1) / n_batches) in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min per (n - i) in
      go (i + len) (Array.sub containers i len :: acc)
  in
  go 0 []

(* Split a container array into randomly sized waves (at least one per
   wave, at most [max_batch]); the rng threads the case's seed. *)
let random_waves rng containers ~max_batch =
  let n = Array.length containers in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let len = min (1 + Rng.int rng max_batch) (n - i) in
      go (i + len) (Array.sub containers i len :: acc)
  in
  go 0 []

let sorted_placements cl = List.sort compare (Cluster.placements cl)
let ids l = List.map (fun (c : Container.t) -> c.Container.id) l

(* One comparable string per cluster state — the differential suites'
   equality fingerprint (container -> machine, sorted). *)
let placement_fingerprint cl =
  String.concat ";"
    (List.map
       (fun (cid, mid) -> Printf.sprintf "%d@%d" cid mid)
       (sorted_placements cl))

(* ---------- random workloads ---------- *)

(* Synthetic workload with the constraint shapes the schedulers care
   about: ~60% of apps anti-affine within, ~25% conflicting with an
   earlier app, ~30% carrying a nonzero priority class, demands 1..8 CPU
   on [machine_cpu]-CPU machines. Submission order is a seeded
   interleaving, so batches mix apps. *)
let random_workload ?(n_apps = 0) ?(machine_cpu = 16.) rng =
  let n_apps = if n_apps > 0 then n_apps else 4 + Rng.int rng 12 in
  let apps =
    Array.init n_apps (fun i ->
        let anti_within = Rng.bool rng 0.6 in
        let across =
          if i > 0 && Rng.bool rng 0.25 then [ Rng.int rng i ] else []
        in
        Application.make ~id:i
          ~n_containers:(1 + Rng.int rng 12)
          ~demand:
            (let cpu = float_of_int (1 + Rng.int rng 8) in
             Resource.make ~cpu ~mem_gb:(2. *. cpu))
          ~priority:(if Rng.bool rng 0.3 then 1 + Rng.int rng 3 else 0)
          ~anti_affinity_within:anti_within ~anti_affinity_across:across ())
  in
  let containers =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (a : Application.t) ->
              Array.of_list (Application.containers a ~first_id:0 ~first_arrival:0))
            apps))
  in
  (* seeded Fisher–Yates; Workload.make re-ids arrivals to array order *)
  let containers = Array.copy containers in
  Array.iteri
    (fun i (c : Container.t) ->
      ignore c;
      let j = Rng.int rng (i + 1) in
      let tmp = containers.(i) in
      containers.(i) <- containers.(j);
      containers.(j) <- tmp)
    containers;
  let containers =
    Array.mapi
      (fun i (c : Container.t) -> { c with Container.id = i; arrival = i })
      containers
  in
  Workload.make ~apps ~containers
    ~machine_capacity:(Resource.make ~cpu:machine_cpu ~mem_gb:(2. *. machine_cpu))

(* ---------- flownet generators ---------- *)

(* General digraph for max-flow differentials: random arcs plus a few
   forced source/sink attachments so the flow is usually nonzero. *)
let random_flow_graph rng ~n ~m ~max_cap =
  let g = Flownet.Graph.create ~arc_hint:(m + 8) n in
  let src = 0 and dst = n - 1 in
  for _ = 1 to m do
    let s = Rng.int rng n and d = Rng.int rng n in
    if s <> d then
      ignore
        (Flownet.Graph.add_arc g ~src:s ~dst:d ~cap:(1 + Rng.int rng max_cap)
           ~cost:0)
  done;
  for _ = 1 to 4 do
    let v = 1 + Rng.int rng (n - 2) in
    ignore
      (Flownet.Graph.add_arc g ~src ~dst:v ~cap:(1 + Rng.int rng max_cap)
         ~cost:0);
    ignore
      (Flownet.Graph.add_arc g ~src:v ~dst ~cap:(1 + Rng.int rng max_cap)
         ~cost:0)
  done;
  (g, src, dst)

(* DAG (arcs only low → high vertex) for min-cost differentials: negative
   costs allowed, acyclicity rules out negative cycles. *)
let random_dag rng ~n ~m ~max_cap ~max_cost =
  let g = Flownet.Graph.create ~arc_hint:(m + n) n in
  let src = 0 and dst = n - 1 in
  for _ = 1 to m do
    let s = Rng.int rng (n - 1) in
    let d = s + 1 + Rng.int rng (n - 1 - s) in
    let cost =
      if Rng.bool rng 0.25 then -(1 + Rng.int rng (max_cost / 4))
      else Rng.int rng max_cost
    in
    ignore
      (Flownet.Graph.add_arc g ~src:s ~dst:d ~cap:(1 + Rng.int rng max_cap)
         ~cost)
  done;
  for v = 0 to n - 2 do
    if Rng.bool rng 0.3 then
      ignore
        (Flownet.Graph.add_arc g ~src:v ~dst:(v + 1)
           ~cap:(1 + Rng.int rng max_cap) ~cost:(Rng.int rng max_cost))
  done;
  (g, src, dst)

(* Random nonnegative-cost graph; a fraction of the arcs get cost zero
   exactly (the Dial bucket queue's batch-pop regime). *)
let random_nonneg_graph rng ~n ~max_cost =
  let g = Flownet.Graph.create ~arc_hint:(n * 4) n in
  for _ = 1 to n * 3 do
    let s = Rng.int rng n and d = Rng.int rng n in
    if s <> d then
      let cost = if Rng.bool rng 0.3 then 0 else Rng.int rng (max_cost + 1) in
      ignore
        (Flownet.Graph.add_arc g ~src:s ~dst:d ~cap:(1 + Rng.int rng 10) ~cost)
  done;
  g

(* ---------- flow oracles ---------- *)

let mincost_exn ?warm ?max_flow g ~src ~dst =
  match Flownet.Mincost.run ?warm ?max_flow g ~src ~dst with
  | Ok s -> s
  | Error e -> Alcotest.failf "mincost error: %s" (Flownet.Error.to_string e)

let solve_exn backend ?max_flow g ~src ~dst =
  match Flownet.Registry.solve backend ?max_flow g ~src ~dst with
  | Ok s -> s
  | Error e ->
      Alcotest.failf "%s error: %s"
        (Flownet.Registry.name backend)
        (Flownet.Error.to_string e)

let registered () =
  List.map
    (fun n ->
      match Flownet.Registry.find n with
      | Some b -> b
      | None -> Alcotest.failf "registry lost backend %s" n)
    (Flownet.Registry.names ())

(* Conservation + capacity respect on every arc, and the claimed value on
   the source/sink. *)
let assert_feasible g ~src ~dst ~value =
  let n = Flownet.Graph.n_vertices g in
  for a = 0 to Flownet.Graph.n_arcs g - 1 do
    if Flownet.Graph.is_forward a then begin
      let f = Flownet.Graph.flow g a in
      if f < 0 || f > Flownet.Graph.capacity g a then
        Alcotest.failf "arc %d: flow %d outside [0, %d]" a f
          (Flownet.Graph.capacity g a)
    end;
    if Flownet.Graph.residual g a < 0 then
      Alcotest.failf "arc %d: negative residual" a
  done;
  for v = 0 to n - 1 do
    let out = Flownet.Graph.outflow g v in
    if v = src then Alcotest.check Alcotest.int "source outflow = value" value out
    else if v = dst then
      Alcotest.check Alcotest.int "sink outflow = -value" (-value) out
    else if out <> 0 then Alcotest.failf "vertex %d: conservation broken" v
  done

(* Bellman–Ford successive-shortest-path min-cost oracle. *)
let ssp_bellman_ford g ~src ~dst =
  Flownet.Graph.reset_flows g;
  let flow = ref 0 and cost = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let r = Flownet.Bellman_ford.run g ~src in
    if r.Flownet.Bellman_ford.negative_cycle then
      Alcotest.fail "oracle: negative cycle in residual graph";
    match
      Flownet.Path.of_parents g ~parent:r.Flownet.Bellman_ford.parent ~src ~dst
    with
    | None -> continue_ := false
    | Some p ->
        let d = p.Flownet.Path.bottleneck in
        let c = Flownet.Path.cost g p in
        Flownet.Path.augment g p d;
        flow := !flow + d;
        cost := !cost + (d * c)
  done;
  (!flow, !cost)
