(* Tests for the simulation layer: replay, metrics, capacity planner. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let mk ?(id = 0) ?(app = 0) ?(priority = 0) ?(arrival = 0) cpu =
  Container.make ~id ~app ~demand:(Resource.cpu_only cpu) ~priority ~arrival

let tiny_workload ?(n = 12) () =
  let apps =
    [| Application.make ~id:0 ~n_containers:n ~demand:(Resource.cpu_only 4.) () |]
  in
  let containers = Array.init n (fun i -> mk ~id:i ~app:0 4.) in
  Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 8.)

(* A deterministic first-fit scheduler used as a known-good fixture. *)
let first_fit_sched =
  {
    Scheduler.name = "first-fit";
    schedule =
      (fun cluster batch ->
        let undeployed = ref [] in
        Array.iter
          (fun c ->
            let n = Cluster.n_machines cluster in
            let rec go mid =
              if mid >= n then undeployed := c :: !undeployed
              else
                match Cluster.place cluster c mid with
                | Ok () -> ()
                | Error _ -> go (mid + 1)
            in
            go 0)
          batch;
        {
          Scheduler.empty_outcome with
          Scheduler.placed =
            Array.to_list batch
            |> List.filter_map (fun (c : Container.t) ->
                   Option.map
                     (fun m -> (c.Container.id, m))
                     (Cluster.machine_of cluster c.Container.id));
          undeployed = List.rev !undeployed;
        });
  }

(* ---------- scheduler outcome helpers ---------- *)

let test_merge_counts () =
  let a =
    { Scheduler.empty_outcome with Scheduler.placed = [ (1, 0) ]; migrations = 2 }
  in
  let b =
    {
      Scheduler.empty_outcome with
      Scheduler.placed = [ (2, 1) ];
      undeployed = [ mk ~id:3 1. ];
      preemptions = 1;
    }
  in
  let m = Scheduler.merge a b in
  check int "placed" 2 (List.length m.Scheduler.placed);
  check int "undeployed" 1 (List.length m.Scheduler.undeployed);
  check int "migrations" 2 m.Scheduler.migrations;
  check int "preemptions" 1 m.Scheduler.preemptions;
  check int "undeployed count helper" 1 (Scheduler.undeployed_count m)

(* ---------- replay ---------- *)

let test_replay_single_wave () =
  let w = tiny_workload () in
  let r = Replay.run_workload first_fit_sched w ~n_machines:6 in
  check int "submitted" 12 r.Replay.n_submitted;
  check int "all placed (2 per machine)" 12
    (List.length r.Replay.outcome.Scheduler.placed);
  check int "machines used" 6 (Cluster.used_machines r.Replay.cluster);
  check bool "latency measured" true (r.Replay.elapsed_s >= 0.)

let test_replay_batched_equals_single () =
  let w = tiny_workload () in
  let single = Replay.run_workload first_fit_sched w ~n_machines:6 in
  let cluster =
    Cluster.create
      (Workload.topology w ~n_machines:6)
      ~constraints:(Workload.constraint_set w)
  in
  let batched =
    Replay.run ~batch:5 first_fit_sched ~cluster
      ~containers:w.Workload.containers
  in
  check int "same placements count"
    (List.length single.Replay.outcome.Scheduler.placed)
    (List.length batched.Replay.outcome.Scheduler.placed)

let test_replay_overload_reports_undeployed () =
  let w = tiny_workload () in
  let r = Replay.run_workload first_fit_sched w ~n_machines:2 in
  check int "4 fit" 4 (List.length r.Replay.outcome.Scheduler.placed);
  check int "8 undeployed" 8 (List.length r.Replay.outcome.Scheduler.undeployed)

(* ---------- metrics ---------- *)

let test_metrics_undeployed_pct () =
  let o = { Scheduler.empty_outcome with Scheduler.undeployed = [ mk 1.; mk 2. ] } in
  check (Alcotest.float 1e-9) "pct" 20. (Metrics.undeployed_pct o ~total:10);
  check (Alcotest.float 1e-9) "zero total" 0. (Metrics.undeployed_pct o ~total:0)

let test_metrics_efficiency () =
  check (Alcotest.float 1e-9) "best is 0" 0. (Metrics.efficiency ~used:100 ~best:100);
  check (Alcotest.float 1e-9) "54% more" 0.54
    (Metrics.efficiency ~used:154 ~best:100);
  Alcotest.check_raises "bad baseline"
    (Invalid_argument "Metrics.efficiency: bad baseline") (fun () ->
      ignore (Metrics.efficiency ~used:1 ~best:0))

let test_metrics_latency () =
  check (Alcotest.float 1e-9) "ms per container" 2.
    (Metrics.latency_ms ~elapsed_s:0.2 ~containers:100);
  check (Alcotest.float 1e-9) "empty" 0. (Metrics.latency_ms ~elapsed_s:1. ~containers:0)

let test_metrics_utilization_summary () =
  let w = tiny_workload ~n:3 () in
  let cluster =
    Cluster.create
      (Workload.topology w ~n_machines:4)
      ~constraints:(Workload.constraint_set w)
  in
  (* one machine with 8/8, one with 4/8, two empty *)
  ignore (Cluster.place cluster (mk ~id:0 ~app:0 4.) 0);
  ignore (Cluster.place cluster (mk ~id:1 ~app:0 4.) 0);
  ignore (Cluster.place cluster (mk ~id:2 ~app:0 4.) 1);
  let u = Metrics.utilization_summary cluster in
  check int "used" 2 u.Metrics.n_used;
  check (Alcotest.float 1e-6) "min" 50. u.Metrics.min_pct;
  check (Alcotest.float 1e-6) "max" 100. u.Metrics.max_pct;
  check (Alcotest.float 1e-6) "mean" 75. u.Metrics.mean_pct

let test_metrics_anti_ratio () =
  let o =
    {
      Scheduler.empty_outcome with
      Scheduler.violations =
        [
          Violation.Anti_affinity { container = 0; machine = 0; against = 1 };
          Violation.Priority_inversion { container = 1; displaced_by = 2 };
        ];
    }
  in
  check (Alcotest.float 1e-9) "50%" 50. (Metrics.anti_affinity_ratio_pct o)

(* ---------- capacity planner ---------- *)

let test_planner_lower_bound () =
  let w = tiny_workload () in
  (* 12 containers x 4 cpu = 48 cpu over 8-cpu machines → ≥ 6 *)
  check int "demand bound" 6 (Capacity_planner.demand_lower_bound w);
  let apps =
    [|
      Application.make ~id:0 ~n_containers:9 ~demand:(Resource.cpu_only 1.)
        ~anti_affinity_within:true ();
    |]
  in
  let containers = Array.init 9 (fun i -> mk ~id:i ~app:0 1.) in
  let w2 =
    Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 8.)
  in
  check int "anti-within bound dominates" 9 (Capacity_planner.demand_lower_bound w2)

let test_planner_finds_minimum () =
  let w = tiny_workload () in
  match Capacity_planner.plan first_fit_sched w with
  | Some { Capacity_planner.pool; used; _ } ->
      check int "minimal pool" 6 pool;
      check int "used machines" 6 used
  | None -> Alcotest.fail "plan expected"

let test_planner_infeasible () =
  let apps =
    [| Application.make ~id:0 ~n_containers:1 ~demand:(Resource.cpu_only 16.) () |]
  in
  let containers = [| mk ~id:0 ~app:0 16. |] in
  let w =
    Workload.make ~apps ~containers ~machine_capacity:(Resource.cpu_only 8.)
  in
  (* container larger than any machine: no pool works *)
  check bool "no plan" true (Capacity_planner.plan ~hi:16 first_fit_sched w = None)

let test_planner_with_aladdin () =
  let params = { (Alibaba.scaled 0.005) with Alibaba.seed = 21 } in
  let w = Alibaba.generate params in
  match Capacity_planner.plan (Aladdin.Aladdin_scheduler.make ()) w with
  | Some { Capacity_planner.pool; used; run; _ } ->
      check bool "pool >= lower bound" true
        (pool >= Capacity_planner.demand_lower_bound w);
      check bool "used <= pool" true (used <= pool);
      check int "no undeployed at minimum" 0
        (List.length run.Replay.outcome.Scheduler.undeployed)
  | None -> Alcotest.fail "aladdin should plan"

(* ---------- Des event queue ---------- *)

let test_des_orders_by_time () =
  let q = Des.create () in
  Des.schedule q ~at:3. "c";
  Des.schedule q ~at:1. "a";
  Des.schedule q ~at:2. "b";
  check bool "pops in time order" true
    (Des.next q = Some (1., "a")
    && Des.next q = Some (2., "b")
    && Des.next q = Some (3., "c"));
  check bool "drained" true (Des.is_empty q);
  check (Alcotest.float 0.) "clock at last pop" 3. (Des.now q)

let test_des_same_timestamp_fifo () =
  let q = Des.create () in
  List.iter (fun p -> Des.schedule q ~at:5. p) [ "a"; "b"; "c"; "d"; "e" ];
  Des.schedule q ~at:1. "first";
  let rec drain acc =
    match Des.next q with
    | Some (_, p) -> drain (p :: acc)
    | None -> List.rev acc
  in
  check
    Alcotest.(list string)
    "ties keep insertion order"
    [ "first"; "a"; "b"; "c"; "d"; "e" ]
    (drain [])

let test_des_rejects_past () =
  let q = Des.create () in
  Des.schedule q ~at:10. ();
  ignore (Des.next q);
  check bool "scheduling before the clock raises" true
    (match Des.schedule q ~at:5. () with
    | () -> false
    | exception Invalid_argument _ -> true);
  check bool "negative delay raises" true
    (match Des.after q ~delay:(-1.) () with
    | () -> false
    | exception Invalid_argument _ -> true);
  (* scheduling exactly at the current time is allowed *)
  Des.schedule q ~at:10. ();
  check int "boundary event accepted" 1 (Des.pending q)

let test_des_cancel () =
  let q = Des.create () in
  let _a = Des.schedule_handle q ~at:1. "a" in
  let b = Des.schedule_handle q ~at:2. "b" in
  let c = Des.schedule_handle q ~at:3. "c" in
  check int "three pending" 3 (Des.pending q);
  check bool "cancel removes" true (Des.cancel q b);
  check int "pending exact after cancel" 2 (Des.pending q);
  check bool "double cancel is false" false (Des.cancel q b);
  check bool "cancelled payload never pops" true
    (Des.next q = Some (1., "a") && Des.next q = Some (3., "c"));
  check bool "cancel after pop is false" false (Des.cancel q c)

let test_des_cancel_preserves_order () =
  let q = Des.create () in
  let handles =
    List.init 20 (fun i ->
        (i, Des.schedule_handle q ~at:(float_of_int (20 - i)) i))
  in
  (* cancel the odd-timed half, interleaved through the heap *)
  List.iter (fun (i, h) -> if i mod 2 = 0 then ignore (Des.cancel q h)) handles;
  check int "half remain" 10 (Des.pending q);
  let rec drain acc =
    match Des.next q with
    | Some (t, _) -> drain (t :: acc)
    | None -> List.rev acc
  in
  let times = drain [] in
  check bool "remaining events still pop sorted" true
    (times = List.sort compare times)

(* ---------- des properties ----------

   Random schedule/after/cancel/pop programs checked against a reference
   model: events pop in (time, insertion-seq) order, a cancelled payload
   never pops, [cancel] answers exactly "was it still pending", and
   [pending] stays exact throughout. *)

let prop_des_random_programs =
  QCheck.Test.make ~count:300 ~name:"random programs match reference model"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let q : int Des.t = Des.create () in
      let handles = ref [] in (* (seq, handle), newest first *)
      let alive : (int, float) Hashtbl.t = Hashtbl.create 64 in
      let n_sched = ref 0 in
      let expected_next () =
        Hashtbl.fold
          (fun seq t best ->
            match best with
            | Some (bt, bs) when (bt, bs) <= (t, seq) -> best
            | _ -> Some (t, seq))
          alive None
      in
      let pop () =
        match (Des.next q, expected_next ()) with
        | None, None -> true
        | Some (t, payload), Some (et, eseq) ->
            Hashtbl.remove alive eseq;
            t = et && payload = eseq
        | Some _, None | None, Some _ -> false
      in
      let step_ok = ref true in
      for _ = 1 to 200 do
        if !step_ok then
          match Rng.int rng 10 with
          | 0 | 1 | 2 | 3 | 4 ->
              (* schedule on an integer grid so same-timestamp ties are
                 common, alternating the two scheduling entry points *)
              let seq = !n_sched in
              incr n_sched;
              let delay = float_of_int (Rng.int rng 4) in
              let h =
                if Rng.bool rng 0.5 then Des.after_handle q ~delay seq
                else Des.schedule_handle q ~at:(Des.now q +. delay) seq
              in
              handles := (seq, h) :: !handles;
              Hashtbl.replace alive seq (Des.now q +. delay)
          | 5 | 6 | 7 -> step_ok := pop ()
          | _ -> (
              (* cancel a random handle, possibly already popped or
                 cancelled: Des.cancel must answer "was it pending" *)
              match !handles with
              | [] -> ()
              | hs ->
                  let seq, h = List.nth hs (Rng.int rng (List.length hs)) in
                  let was_alive = Hashtbl.mem alive seq in
                  step_ok := !step_ok && Des.cancel q h = was_alive;
                  Hashtbl.remove alive seq)
      done;
      let exact = Des.pending q = Hashtbl.length alive in
      let drained = ref !step_ok in
      while not (Des.is_empty q) do
        drained := !drained && pop ()
      done;
      !step_ok && exact && !drained && Hashtbl.length alive = 0)

let prop_des_mass_cancel_pending_exact =
  QCheck.Test.make ~count:300 ~name:"pending exact under mass cancellation"
    (QCheck.make QCheck.Gen.(pair (int_bound 1_000_000) (int_range 1 150)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let q : int Des.t = Des.create () in
      let hs =
        Array.init n (fun i ->
            Des.schedule_handle q ~at:(float_of_int (Rng.int rng 8)) i)
      in
      let cancelled = Hashtbl.create 16 in
      (* cancel a random subset, some of them twice *)
      for _ = 1 to n do
        let i = Rng.int rng n in
        if Rng.bool rng 0.6 then begin
          let first = not (Hashtbl.mem cancelled i) in
          if Des.cancel q hs.(i) <> first then
            Hashtbl.replace cancelled (-1) () (* poison: count mismatch *)
          else Hashtbl.replace cancelled i ()
        end
      done;
      let n_cancelled = Hashtbl.length cancelled in
      let exact = Des.pending q = n - n_cancelled in
      let popped = ref 0 in
      let ok = ref (not (Hashtbl.mem cancelled (-1))) in
      let rec drain () =
        match Des.next q with
        | None -> ()
        | Some (_, i) ->
            incr popped;
            if Hashtbl.mem cancelled i then ok := false;
            drain ()
      in
      drain ();
      exact && !ok && !popped = n - n_cancelled)

let () =
  Alcotest.run "sim"
    [
      ("outcome", [ Alcotest.test_case "merge" `Quick test_merge_counts ]);
      ( "replay",
        [
          Alcotest.test_case "single wave" `Quick test_replay_single_wave;
          Alcotest.test_case "batched equals single" `Quick
            test_replay_batched_equals_single;
          Alcotest.test_case "overload" `Quick test_replay_overload_reports_undeployed;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "undeployed pct" `Quick test_metrics_undeployed_pct;
          Alcotest.test_case "efficiency Eq.10" `Quick test_metrics_efficiency;
          Alcotest.test_case "latency Eq.11" `Quick test_metrics_latency;
          Alcotest.test_case "utilization summary" `Quick
            test_metrics_utilization_summary;
          Alcotest.test_case "anti ratio" `Quick test_metrics_anti_ratio;
        ] );
      ( "capacity-planner",
        [
          Alcotest.test_case "lower bound" `Quick test_planner_lower_bound;
          Alcotest.test_case "finds minimum" `Quick test_planner_finds_minimum;
          Alcotest.test_case "infeasible" `Quick test_planner_infeasible;
          Alcotest.test_case "with aladdin" `Quick test_planner_with_aladdin;
        ] );
      ( "des",
        [
          Alcotest.test_case "orders by time" `Quick test_des_orders_by_time;
          Alcotest.test_case "same-timestamp fifo" `Quick
            test_des_same_timestamp_fifo;
          Alcotest.test_case "rejects past" `Quick test_des_rejects_past;
          Alcotest.test_case "cancel" `Quick test_des_cancel;
          Alcotest.test_case "cancel preserves order" `Quick
            test_des_cancel_preserves_order;
        ] );
      ( "des-properties",
        [
          QCheck_alcotest.to_alcotest prop_des_random_programs;
          QCheck_alcotest.to_alcotest prop_des_mass_cancel_pending_exact;
        ] );
    ]
