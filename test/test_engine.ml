(* Differential suite for the engine: an [Engine.Stack.build]-assembled
   stack must place identically — same seed, same placement fingerprint —
   to the hand-built stack it replaced in bench/fault_smoke/sched_zoo.
   The hand-built sides below are copied verbatim from the pre-engine
   drivers and must NOT be rewritten in terms of the engine, or the test
   stops testing anything. Also covers the of_name/of_args/of_env parser
   vocabulary and the Obs epoch scoping [run_counters] relies on. *)

module Stack = Engine.Stack

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------- the golden workload: seed 42 at 1/200 scale ---------- *)

let workload =
  lazy (Alibaba.generate { (Alibaba.scaled 0.005) with Alibaba.seed = 42 })

let replay_fp sched =
  let w = Lazy.force workload in
  let n_machines = Gen.machines_for w ~headroom:1.3 in
  let r = Replay.run_workload ~batch:32 sched w ~n_machines in
  Gen.placement_fingerprint r.Replay.cluster

let engine_fp spec =
  let b = Stack.build spec in
  let fp = replay_fp b.Stack.scheduler in
  b.Stack.shutdown ();
  fp

(* ---------- hand-built stacks (pre-engine constructions) ---------- *)

let noop () = ()

(* A generous ladder deadline: no rung ever expires, so the wall-clock
   middleware stays deterministic and the fingerprints comparable. *)
let slack_ms = 60_000.

(* Each case: label, engine spec, hand construction returning the
   scheduler plus its shutdown. [solver] pins the registry backend on
   both sides — the matrix below runs every case under two backends. *)
let cases solver =
  let firmament_config =
    { Firmament.default with Firmament.solver }
  in
  [
    ( "aladdin",
      { Stack.default with Stack.solver = Some solver },
      fun () -> (Aladdin.Aladdin_scheduler.make (), noop) );
    ( "aladdin-warm",
      { Stack.default with Stack.kind = Stack.Aladdin_warm;
        solver = Some solver },
      fun () -> (Aladdin.Aladdin_scheduler.make_warm (), noop) );
    ( "aladdin-plain",
      { Stack.default with Stack.il = false; dl = false;
        solver = Some solver },
      fun () ->
        ( Aladdin.Aladdin_scheduler.make
            ~options:
              {
                Aladdin.Aladdin_scheduler.default_options with
                il = false;
                dl = false;
              }
            (),
          noop ) );
    ( "cells",
      { Stack.default with Stack.kind = Stack.Cells; cells = Some 2;
        solver = Some solver },
      fun () ->
        let comp = Aladdin.Cells_scheduler.create ~cells:2 () in
        ( Aladdin.Cells_scheduler.scheduler comp,
          fun () -> Aladdin.Cells_scheduler.shutdown comp ) );
    ( "firmament",
      { Stack.default with Stack.kind = Stack.Firmament;
        cost_model = Cost_model.Quincy; reschd = 8; solver = Some solver },
      fun () ->
        ( Firmament.make
            ~config:
              {
                firmament_config with
                Firmament.cost_model = Cost_model.Quincy;
                reschd = 8;
              }
            (),
          noop ) );
    ( "medea",
      { Stack.default with Stack.kind = Stack.Medea; solver = Some solver },
      fun () -> (Medea.make (), noop) );
    ( "gokube",
      { Stack.default with Stack.kind = Stack.Gokube; solver = Some solver },
      fun () -> (Gokube.make (), noop) );
    ( "ladder",
      { Stack.default with Stack.kind = Stack.Ladder;
        deadline_ms = slack_ms; solver = Some solver },
      fun () -> (Ladder.make ~deadline_ms:slack_ms (), noop) );
    (* the fault_smoke ladder stack: Aladdin first rung, auditor outermost *)
    ( "aladdin+ladder+audit",
      { Stack.default with Stack.deadline_ms = slack_ms; audit = true;
        solver = Some solver },
      fun () ->
        ( Audit.wrap
            ~place:(fun cl c -> Aladdin.Migration.repair_placement cl c)
            (Ladder.make ~deadline_ms:slack_ms
               ~first:("aladdin", Aladdin.Aladdin_scheduler.make ())
               ()),
          noop ) );
  ]

let test_differential backend () =
  List.iter
    (fun (name, spec, hand) ->
      let sched, shutdown = hand () in
      let fp_hand = replay_fp sched in
      shutdown ();
      let fp_engine = engine_fp spec in
      check bool
        (Printf.sprintf "%s/%s fingerprint nonempty" name backend)
        true
        (String.length fp_hand > 0);
      check string
        (Printf.sprintf "%s/%s engine = hand" name backend)
        fp_hand fp_engine)
    (cases backend)

(* A registry-backend name builds a Firmament stack pinned to that
   solver, exactly as [Ladder.rung] / the serving phase always did. *)
let test_backend_name_stack () =
  match Stack.of_name "dinic" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      check bool "kind firmament" true (spec.Stack.kind = Stack.Firmament);
      check string "solver pinned" "dinic"
        (Option.value ~default:"?" spec.Stack.solver);
      let fp_hand =
        replay_fp
          (Firmament.make
             ~config:{ Firmament.default with Firmament.solver = "dinic" }
             ())
      in
      check string "backend-name engine = hand" fp_hand (engine_fp spec)

(* ---------- parser vocabulary ---------- *)

let test_of_name () =
  (match Stack.of_name "aladdin-plain" with
  | Ok s ->
      check bool "plain: il off" true (not s.Stack.il);
      check bool "plain: dl off" true (not s.Stack.dl)
  | Error e -> Alcotest.fail e);
  (match Stack.of_name "firmament-octopus" with
  | Ok s ->
      check bool "octopus cost model" true
        (s.Stack.cost_model = Cost_model.Octopus)
  | Error e -> Alcotest.fail e);
  (match Stack.of_name "go-kube" with
  | Ok s -> check bool "go-kube alias" true (s.Stack.kind = Stack.Gokube)
  | Error e -> Alcotest.fail e);
  (match Stack.of_name "nonesuch" with
  | Ok _ -> Alcotest.fail "unknown scheduler accepted"
  | Error _ -> ());
  (* base fields survive the rename *)
  match
    Stack.of_name ~base:{ Stack.default with Stack.fault_rate = 0.25 } "medea"
  with
  | Ok s ->
      check bool "base overlay kept" true (s.Stack.fault_rate = 0.25)
  | Error e -> Alcotest.fail e

let test_of_args () =
  (match
     Stack.of_args
       [
         "--sched"; "cells"; "--cells"; "4"; "--cells-mode"; "sequential";
         "--solver"; "cost-scaling"; "--deadline-ms"; "2.5";
       ]
   with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check bool "cells kind" true (s.Stack.kind = Stack.Cells);
      check int "cell count" 4 (Option.value ~default:0 s.Stack.cells);
      check bool "sequential mode" true (s.Stack.cells_mode = Some `Sequential);
      check string "solver" "cost-scaling"
        (Option.value ~default:"?" s.Stack.solver);
      check bool "deadline" true (s.Stack.deadline_ms = 2.5);
      check bool "deadline arms audit" true s.Stack.audit);
  (match Stack.of_args [ "--deadline-ms"; "2"; "--no-audit" ] with
  | Ok s -> check bool "--no-audit disarms" true (not s.Stack.audit)
  | Error e -> Alcotest.fail e);
  (match Stack.of_args [ "--sched"; "nonesuch" ] with
  | Ok _ -> Alcotest.fail "unknown --sched accepted"
  | Error _ -> ());
  (match Stack.of_args [ "--solver"; "nonesuch" ] with
  | Ok _ -> Alcotest.fail "unknown --solver accepted"
  | Error _ -> ());
  (match Stack.of_args [ "--ladder"; "mincost,nonesuch" ] with
  | Ok _ -> Alcotest.fail "unknown rung accepted"
  | Error _ -> ());
  (match Stack.of_args [ "--cells" ] with
  | Ok _ -> Alcotest.fail "dangling flag accepted"
  | Error e -> check bool "dangling flag names itself" true
      (String.length e > 0 && String.sub e 0 7 = "--cells"));
  match Stack.of_args [ "--bogus" ] with
  | Ok _ -> Alcotest.fail "unknown flag accepted"
  | Error _ -> ()

(* Env overlay: set variables override the base, unset ones leave it
   alone. Only float-typed knobs are exercised so that resetting to ""
   really clears them (Env.float_opt treats "" as absent). *)
let test_of_env () =
  Unix.putenv "ALADDIN_DEADLINE_MS" "1.5";
  Unix.putenv "ALADDIN_FAULT_RATE" "0.1";
  let base = { Stack.default with Stack.fault_seed = 99 } in
  let s = Stack.of_env ~base () in
  check bool "deadline from env" true (s.Stack.deadline_ms = 1.5);
  check bool "deadline arms audit" true s.Stack.audit;
  check bool "fault rate from env" true (s.Stack.fault_rate = 0.1);
  check int "unset knob keeps base" 99 s.Stack.fault_seed;
  Unix.putenv "ALADDIN_DEADLINE_MS" "";
  Unix.putenv "ALADDIN_FAULT_RATE" "";
  let s = Stack.of_env ~base () in
  check bool "cleared env keeps base deadline" true (s.Stack.deadline_ms = 0.);
  check bool "cleared env keeps base audit" true (not s.Stack.audit)

(* ---------- obs epoch scoping ---------- *)

(* Two back-to-back engine runs must report identical per-run counter
   deltas; cumulative (pre-epoch) counters would double on the second. *)
let test_epoch_scoping () =
  let run () =
    let b = Stack.build Stack.default in
    let w = Lazy.force workload in
    let n_machines = Gen.machines_for w ~headroom:1.3 in
    ignore (Replay.run_workload ~batch:32 b.Stack.scheduler w ~n_machines);
    let counters = Stack.run_counters b in
    b.Stack.shutdown ();
    counters
  in
  let batches l =
    match List.assoc_opt "aladdin.batches" l with Some n -> n | None -> 0
  in
  let c1 = run () in
  let c2 = run () in
  check bool "first run counted batches" true (batches c1 > 0);
  check int "second run scoped to itself" (batches c1) (batches c2)

let test_epoch_primitive () =
  let c = Obs.counter "test_engine.epoch_probe" in
  Obs.incr c;
  let e = Obs.epoch () in
  Obs.incr c;
  Obs.incr c;
  check int "count_since sees only the delta" 2 (Obs.count_since e c);
  check bool "counters_since lists the probe" true
    (List.assoc_opt "test_engine.epoch_probe" (Obs.counters_since e) = Some 2)

let () =
  Alcotest.run "engine"
    [
      ( "parsers",
        [
          Alcotest.test_case "of_name" `Quick test_of_name;
          Alcotest.test_case "of_args" `Quick test_of_args;
          Alcotest.test_case "of_env" `Quick test_of_env;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "primitive" `Quick test_epoch_primitive;
          Alcotest.test_case "run scoping" `Slow test_epoch_scoping;
        ] );
      ( "differential",
        [
          Alcotest.test_case "mincost backend" `Slow
            (test_differential "mincost");
          Alcotest.test_case "cost-scaling backend" `Slow
            (test_differential "cost-scaling");
          Alcotest.test_case "backend-name stack" `Slow
            test_backend_name_stack;
        ] );
    ]
