(* Integration tests: the full experiment pipeline at 1/100 scale. These
   assert the paper's qualitative shapes, not absolute numbers. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let tiny = Exp_config.make ~seed:42 ~factor:0.01 ()

(* ---------- config ---------- *)

let test_config_make () =
  check int "machines at 0.01" 100 tiny.Exp_config.machines;
  check int "containers at 0.01" 1000 tiny.Exp_config.containers;
  check int "scaled paper count" 40 (Exp_config.scale_machines tiny 4000);
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Exp_config.make: factor must be positive") (fun () ->
      ignore (Exp_config.make ~factor:0. ()))

let test_config_env () =
  Unix.putenv "ALADDIN_SCALE" "0.02";
  Unix.putenv "ALADDIN_SEED" "7";
  let cfg = Exp_config.of_env () in
  check int "seed from env" 7 cfg.Exp_config.seed;
  check bool "factor from env" true (Float.abs (cfg.Exp_config.factor -. 0.02) < 1e-9);
  Unix.putenv "ALADDIN_SCALE" "full";
  check bool "full" true ((Exp_config.of_env ()).Exp_config.factor = 1.0);
  Unix.putenv "ALADDIN_SCALE" "garbage";
  check bool "garbage falls back" true
    ((Exp_config.of_env ()).Exp_config.factor = 0.1);
  Unix.putenv "ALADDIN_SCALE" "";
  Unix.putenv "ALADDIN_SEED" ""

(* ---------- fig 8 ---------- *)

let test_fig8_shapes () =
  let r = Fig8.run tiny in
  let s = r.Fig8.stats in
  check int "container budget" tiny.Exp_config.containers
    s.Workload_stats.n_containers;
  check bool "cdf monotone" true
    (let rec mono = function
       | (_, a) :: ((_, b) :: _ as tl) -> a <= b +. 1e-9 && mono tl
       | _ -> true
     in
     mono r.Fig8.cdf);
  check bool "cdf ends at 1" true
    (match List.rev r.Fig8.cdf with (_, f) :: _ -> f > 0.999 | [] -> false)

(* ---------- fig 9 ---------- *)

let test_fig9_shapes () =
  let panels = Fig9.run tiny in
  check int "four panels" 4 (List.length panels);
  List.iter
    (fun { Fig9.label = _; rows } ->
      check int "seven schedulers" 7 (List.length rows);
      (* Aladdin always wins: zero undeployed, zero violations *)
      let aladdin = List.nth rows 5 in
      check (Alcotest.float 1e-9) "aladdin zero" 0. aladdin.Fig9.undeployed_pct;
      check int "aladdin no violations" 0 aladdin.Fig9.n_violations;
      (* ...and so does the sharded-cells stack (the engine column). *)
      let cells = List.nth rows 6 in
      check (Alcotest.float 1e-9) "cells zero" 0. cells.Fig9.undeployed_pct;
      check int "cells no violations" 0 cells.Fig9.n_violations;
      List.iter
        (fun r ->
          check bool "pct within range" true
            (r.Fig9.undeployed_pct >= 0. && r.Fig9.undeployed_pct <= 100.))
        rows)
    panels;
  (* Firmament improves with the rescheduling budget: panel (a) uses
     reschd=1, panel (d) reschd=8. *)
  let undeployed_of panel name_prefix =
    let { Fig9.rows; _ } = List.nth panels panel in
    (List.find
       (fun r ->
         String.length r.Fig9.scheduler >= String.length name_prefix
         && String.sub r.Fig9.scheduler 0 (String.length name_prefix)
            = name_prefix)
       rows)
      .Fig9.undeployed_pct
  in
  check bool "QUINCY(8) <= QUINCY(1)" true
    (undeployed_of 3 "Firmament-QUINCY" <= undeployed_of 0 "Firmament-QUINCY")

(* ---------- fig 10 / 11 ---------- *)

let test_fig10_shapes () =
  let cells = Fig10.run tiny in
  check int "4 orders x 4 schedulers" 16 (List.length cells);
  (* Aladdin uses the fewest machines on every arrival order. *)
  List.iter
    (fun order ->
      let of_sched prefix =
        List.find_opt
          (fun c ->
            c.Fig10.order = order
            && String.length c.Fig10.scheduler >= String.length prefix
            && String.sub c.Fig10.scheduler 0 (String.length prefix) = prefix)
          cells
      in
      match (of_sched "Aladdin", of_sched "Go-Kube") with
      | Some a, Some g -> (
          match (a.Fig10.used, g.Fig10.used) with
          | Some ua, Some ug ->
              check bool "Aladdin <= Go-Kube machines" true (ua <= ug)
          | _ -> ())
      | _ -> Alcotest.fail "cells missing")
    Arrival.
      [
        High_priority_first;
        Low_priority_first;
        Large_anti_affinity_first;
        Small_anti_affinity_first;
      ];
  (* efficiency rows computable and non-negative *)
  List.iter
    (fun (_, e) -> check bool "eff >= 0" true (e >= -1e9 && e >= 0.))
    (Fig10.efficiency_rows cells)

(* ---------- fig 12 ---------- *)

let test_fig12_shapes () =
  let cfg = Exp_config.make ~seed:42 ~factor:0.005 () in
  let points = Fig12.run cfg in
  check bool "several sizes" true (List.length points >= 2);
  List.iter
    (fun p ->
      check int "six schedulers" 6 (List.length p.Fig12.latency_ms);
      List.iter
        (fun (_, ms) -> check bool "latency non-negative" true (ms >= 0.))
        p.Fig12.latency_ms)
    points

(* ---------- fig 13 ---------- *)

let test_fig13_shapes () =
  let cfg = Exp_config.make ~seed:42 ~factor:0.005 () in
  let points = Fig13.run cfg in
  check bool "points exist" true (List.length points >= 4);
  List.iter
    (fun p ->
      check bool "elapsed >= 0" true (p.Fig13.elapsed_s >= 0.);
      check bool "migrations >= 0" true (p.Fig13.migrations >= 0);
      check bool "paths > 0" true (p.Fig13.paths_explored > 0))
    points

(* ---------- ablations & extensions ---------- *)

let test_ablations_shapes () =
  let rows = Ablations.search_optimizations tiny in
  check int "four policies" 4 (List.length rows);
  (* quality identical across policies *)
  let undeployed =
    List.map (fun (r : Ablations.search_row) -> r.Ablations.undeployed) rows
  in
  check bool "same quality" true
    (List.for_all (fun u -> u = List.hd undeployed) undeployed);
  (* IL+DL explores no more paths than plain *)
  let paths name =
    (List.find (fun (r : Ablations.search_row) -> r.Ablations.policy = name) rows)
      .Ablations.paths_explored
  in
  check bool "IL+DL <= plain" true (paths "Aladdin+IL+DL" <= paths "Aladdin");
  let mech = Ablations.mechanisms tiny in
  check int "four configs" 4 (List.length mech);
  let full : Ablations.mechanism_row = List.hd mech in
  let none : Ablations.mechanism_row = List.nth mech 3 in
  check bool "mechanisms never hurt" true
    (full.Ablations.undeployed <= none.Ablations.undeployed);
  let dims = Ablations.dimensions tiny in
  check int "two dims rows" 2 (List.length dims)

let test_heterogeneous_shapes () =
  let rows = Heterogeneous.run tiny in
  check int "four rows" 4 (List.length rows);
  List.iter
    (fun r ->
      if
        String.length r.Heterogeneous.scheduler >= 7
        && String.sub r.Heterogeneous.scheduler 0 7 = "Aladdin"
      then check int "aladdin deploys all on any pool" 0 r.Heterogeneous.undeployed)
    rows

let test_online_shapes () =
  let rows = Online.run tiny in
  check int "four modes" 4 (List.length rows);
  List.iter
    (fun r -> check int (r.Online.mode ^ " deploys all") 0 r.Online.undeployed)
    rows

let test_failure_shapes () =
  let steps = Failure.run ~n_failures:3 tiny in
  check int "three steps" 3 (List.length steps);
  List.iter
    (fun s ->
      check int "no violations after recovery" 0 s.Failure.violations;
      check bool "anti-within blast radius is one replica" true
        (s.Failure.max_replicas_lost <= 1);
      check int "recovered + lost = displaced" s.Failure.displaced
        (s.Failure.recovered + s.Failure.lost))
    steps

(* ---------- end to end: all schedulers on one workload ---------- *)

let test_cross_scheduler_sanity () =
  let w = Exp_config.workload tiny in
  let total = Workload.n_containers w in
  let machines = tiny.Exp_config.machines in
  let schedulers =
    [
      Sched_zoo.aladdin ();
      Sched_zoo.gokube ();
      Sched_zoo.medea ~a:1. ~b:1. ~c:0.;
      Sched_zoo.firmament Cost_model.Quincy ~reschd:8;
    ]
  in
  List.iter
    (fun sched ->
      let r = Replay.run_workload sched w ~n_machines:machines in
      check int
        (sched.Scheduler.name ^ ": accounting")
        total
        (List.length r.Replay.outcome.Scheduler.placed
        + List.length r.Replay.outcome.Scheduler.undeployed);
      (* no scheduler may corrupt machine capacity *)
      Array.iter
        (fun m ->
          check bool "capacity" true
            (Resource.fits ~demand:(Machine.used m) ~within:(Machine.capacity m)))
        (Cluster.machines r.Replay.cluster))
    schedulers

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "make" `Quick test_config_make;
          Alcotest.test_case "env" `Quick test_config_env;
        ] );
      ("fig8", [ Alcotest.test_case "shapes" `Quick test_fig8_shapes ]);
      ("fig9", [ Alcotest.test_case "shapes" `Slow test_fig9_shapes ]);
      ("fig10", [ Alcotest.test_case "shapes" `Slow test_fig10_shapes ]);
      ("fig12", [ Alcotest.test_case "shapes" `Slow test_fig12_shapes ]);
      ("fig13", [ Alcotest.test_case "shapes" `Slow test_fig13_shapes ]);
      ( "extensions",
        [
          Alcotest.test_case "ablations" `Slow test_ablations_shapes;
          Alcotest.test_case "heterogeneous" `Slow test_heterogeneous_shapes;
          Alcotest.test_case "online" `Slow test_online_shapes;
          Alcotest.test_case "failure" `Slow test_failure_shapes;
        ] );
      ( "cross-scheduler",
        [ Alcotest.test_case "sanity" `Slow test_cross_scheduler_sanity ] );
    ]
